// Package sessiond hosts many independent help sessions in one
// process: the multi-user arrangement the paper's Discussion sketches,
// where one CPU server runs the shell-like process for every terminal
// that calls in.
//
// A Manager stamps sessions out of a world.Template on first attach —
// each gets a private namespace union-bound over the template's shared
// sealed userland, its own journal directory guarded by a lockfile, and
// hard limits on live commands, Errors growth, and queue depth. The
// Manager implements srvnet.Hub, so one listener multiplexes every
// session by attach handshake.
//
// Sessions are failure domains. A panic inside one session's actor, a
// runaway command, or a journal write error marks that session crashed
// — its work is killed, its journal flushed, its row in every session's
// /mnt/help/sessions table updated — while the remaining sessions keep
// serving. Shutdown is a bounded graceful drain: attaches stop with a
// typed draining error, live commands are killed, and every journal is
// flushed and checkpointed so each session is recoverable byte for
// byte.
package sessiond

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/notify"
	"repro/internal/obs"
	"repro/internal/srvnet"
	"repro/internal/vfs"
	"repro/internal/world"
)

// Typed refusals. ErrMaxSessions wraps srvnet.ErrBusy and ErrDraining
// wraps srvnet.ErrDraining so they cross the wire with the right codes
// and clients classify them with errors.Is.
var (
	ErrMaxSessions = fmt.Errorf("sessiond: session table full: %w", srvnet.ErrBusy)
	ErrDraining    = fmt.Errorf("sessiond: %w", srvnet.ErrDraining)
	ErrCrashed     = errors.New("sessiond: session crashed")
	ErrBadName     = errors.New("sessiond: bad session name")
)

// DefaultMaxSessions bounds the table when Config.MaxSessions is zero.
const DefaultMaxSessions = 1024

// Config parameterizes a Manager. Zero values mean: 80x24 screens,
// DefaultMaxSessions, no idle reaping, no journals, no per-session
// limits beyond the core defaults.
type Config struct {
	// Width, Height size each session's screen.
	Width, Height int
	// MaxSessions bounds live sessions; attaches beyond it are refused
	// with ErrMaxSessions.
	MaxSessions int
	// TTL reaps sessions that have had no attachments and no use for
	// this long: their journals are checkpointed and closed, their
	// locks released, their memory dropped. Zero disables reaping.
	TTL time.Duration
	// JournalRoot, when set, gives each session a write-ahead journal
	// in JournalRoot/<name>, lockfile-guarded; a session whose
	// directory holds a checkpoint is recovered from it on spawn.
	JournalRoot string
	// Fsync is the journal durability policy.
	Fsync journal.Policy
	// MaxProcs, ErrorsCap, QueueDepth are per-session hard limits,
	// applied via core.SetLimits. Zeroes keep the core defaults.
	MaxProcs   int
	ErrorsCap  int
	QueueDepth int
	// MaxSessionBytes caps each session's resident buffer bytes
	// (core.Limits.MaxBytes). Zero keeps the core default (unlimited).
	MaxSessionBytes int64
	// MaxResident sets each session's paged-text threshold and
	// per-buffer residency cap (core.Limits.MaxResident). Zero keeps
	// the core default; negative disables paging.
	MaxResident int64
	// MaxBytes bounds the daemon's total resident buffer bytes summed
	// across sessions: body loads past it are refused with a typed busy
	// error carrying a retry-after hint, and new sessions are refused
	// admission while the budget is spent. Zero means unbounded.
	MaxBytes int64
	// MaxTotalProcs bounds live external commands summed across
	// sessions, checked after each session's own MaxProcs. Zero means
	// unbounded.
	MaxTotalProcs int
	// RetryAfter is the hint stamped on budget refusals; zero means
	// DefaultRetryAfter.
	RetryAfter time.Duration
	// Obs, when set, gains gauges sessiond.live and sessiond.crashed
	// plus counters for spawns, attaches, detaches, reaps, and crashes.
	Obs *obs.Registry
	// Build produces the named session's world; typically a closure
	// over Template.NewSession. The name lets hosts and tests
	// customize or record per-session worlds.
	Build func(name string, w, h int) (*world.World, error)
	// JournalFS overrides how a session's journal directory is opened
	// (tests inject fault-wrapped or in-memory backends). Nil means
	// journal.DirFS(JournalRoot/<name>); only consulted when
	// JournalRoot is set or JournalFS itself is non-nil.
	JournalFS func(name string) (journal.Fsys, error)
}

// session state machine: active -> crashed (containment) and
// active|crashed -> closed (reap or drain). Attach only succeeds on
// active; every transition shows in /mnt/help/sessions.
type state int

const (
	stateActive state = iota
	stateCrashed
	stateClosed
)

func (s state) String() string {
	switch s {
	case stateActive:
		return "active"
	case stateCrashed:
		return "crashed"
	case stateClosed:
		return "closed"
	}
	return "unknown"
}

// session is one hosted help instance and its lifecycle bookkeeping.
// The Manager's mutex guards every field; the world's own actor lock
// guards the session's interior.
type session struct {
	name     string
	w        *world.World
	st       state
	reason   string // why crashed
	attached int    // live attach handshakes
	lastUsed time.Time
	born     time.Time

	jw   *journal.Writer
	lock *journal.DirLock

	// Spawn happens outside the Manager lock; ready closes when the
	// build finishes (err set on failure) so concurrent attaches to a
	// session being born wait instead of double-building.
	ready chan struct{}
	err   error
}

// Manager hosts the session table. It implements srvnet.Hub.
//
// Lock ordering: a session's actor lock may be held while taking the
// Manager lock (the sessions-table device and crash hooks do), so code
// holding the Manager lock must never call into a session method that
// locks — only lock-free atomics like WindowCount/ProcCount.
type Manager struct {
	cfg Config

	// bus is the daemon-level event stream: one line per session
	// lifecycle transition (spawn, attach, detach, crash, reap, close,
	// drain), plus every hosted session's own events forwarded with a
	// "<session>/<window>" prefix. Served as /mnt/help/daemonlog in
	// every session's namespace.
	bus *notify.Bus

	mu       sync.Mutex
	sessions map[string]*session
	draining bool

	reaperStop chan struct{}
	reaperDone chan struct{}

	cSpawns   *obs.Counter
	cAttaches *obs.Counter
	cDetaches *obs.Counter
	cReaps    *obs.Counter
	cCrashes  *obs.Counter

	// Budget refusal counters: daemon.budget.refused.{attach,mem,proc}.
	cAttachRefused *obs.Counter
	cMemRefused    *obs.Counter
	cProcRefused   *obs.Counter
}

// NewManager returns a Manager over cfg. When cfg.TTL is set, an idle
// reaper runs until Drain.
func NewManager(cfg Config) *Manager {
	if cfg.Width <= 0 {
		cfg.Width = 80
	}
	if cfg.Height <= 0 {
		cfg.Height = 24
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	m := &Manager{
		cfg:      cfg,
		bus:      notify.New(),
		sessions: map[string]*session{},
	}
	r := cfg.Obs
	m.bus.SetObs(r)
	m.cSpawns = r.Counter("sessiond.spawns")
	m.cAttaches = r.Counter("sessiond.attaches")
	m.cDetaches = r.Counter("sessiond.detaches")
	m.cReaps = r.Counter("sessiond.reaps")
	m.cCrashes = r.Counter("sessiond.crashes")
	m.cAttachRefused = r.Counter("daemon.budget.refused.attach")
	m.cMemRefused = r.Counter("daemon.budget.refused.mem")
	m.cProcRefused = r.Counter("daemon.budget.refused.proc")
	if r != nil {
		r.Gauge("sessiond.live", func() int64 { return int64(m.countState(stateActive)) })
		r.Gauge("sessiond.crashed", func() int64 { return int64(m.countState(stateCrashed)) })
		r.Gauge("daemon.budget.bytes", m.MemBytes)
		r.Gauge("daemon.budget.procs", func() int64 { return int64(m.TotalProcs()) })
		r.Gauge("daemon.budget.sessions", func() int64 { return int64(m.SessionCount()) })
	}
	if cfg.TTL > 0 {
		m.reaperStop = make(chan struct{})
		m.reaperDone = make(chan struct{})
		go m.reaper()
	}
	return m
}

func (m *Manager) countState(want state) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, s := range m.sessions {
		if s.st == want {
			n++
		}
	}
	return n
}

// validName admits the characters safe in a journal directory name and
// a wire handshake: letters, digits, dot, underscore, dash — but not
// the path-meaningful "." and "..".
func validName(name string) bool {
	if name == "" || name == "." || name == ".." || len(name) > 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// AttachSession resolves one attach handshake: the session is spawned
// on first attach, refused while the table is full, the manager
// draining, or the session crashed. The returned namespace is the
// session's serialized view; the detach function drops the attachment
// (srvnet calls it when the connection leaves). Implements srvnet.Hub.
func (m *Manager) AttachSession(name string) (*vfs.FS, func(), error) {
	if !validName(name) {
		return nil, nil, fmt.Errorf("%w: %q", ErrBadName, name)
	}
	for {
		m.mu.Lock()
		if m.draining {
			m.mu.Unlock()
			return nil, nil, ErrDraining
		}
		s, ok := m.sessions[name]
		if !ok {
			if err := m.admitSpawnLocked(); err != nil {
				m.mu.Unlock()
				return nil, nil, err
			}
			s = &session{name: name, ready: make(chan struct{}), born: time.Now()}
			m.sessions[name] = s
			m.mu.Unlock()
			m.spawn(s) // outside the lock: builds a whole world
		} else {
			m.mu.Unlock()
		}
		<-s.ready
		m.mu.Lock()
		if s.err != nil {
			m.mu.Unlock()
			return nil, nil, s.err
		}
		if m.sessions[name] != s {
			// Reaped (or failed and removed) between spawn and attach:
			// go around and spawn a fresh one.
			m.mu.Unlock()
			continue
		}
		if st, reason := s.st, s.reason; st != stateActive {
			m.mu.Unlock()
			if st == stateCrashed {
				return nil, nil, fmt.Errorf("%w: %s (%s)", ErrCrashed, name, reason)
			}
			return nil, nil, fmt.Errorf("sessiond: session %s is %s", name, st)
		}
		s.attached++
		s.lastUsed = time.Now()
		m.cAttaches.Inc()
		fs := s.w.FS
		m.mu.Unlock()
		m.bus.Publish(0, "attach", name)
		detach := func() {
			m.mu.Lock()
			s.attached--
			s.lastUsed = time.Now()
			m.mu.Unlock()
			m.cDetaches.Inc()
			m.bus.Publish(0, "detach", name)
		}
		return fs, detach, nil
	}
}

// spawn builds the session outside the Manager lock and publishes the
// result through s.ready. On failure the placeholder is removed so a
// later attach can retry.
func (m *Manager) spawn(s *session) {
	w, jw, lock, err := m.build(s.name)
	m.mu.Lock()
	if err != nil {
		s.err = err
		delete(m.sessions, s.name)
	} else {
		s.w, s.jw, s.lock = w, jw, lock
		s.lastUsed = time.Now()
		m.cSpawns.Inc()
	}
	m.mu.Unlock()
	close(s.ready)
	if err != nil {
		if m.cfg.Obs != nil {
			m.cfg.Obs.Event("sessiond.spawn-failed", s.name+": "+err.Error())
		}
		m.bus.Publish(0, "spawn-failed", s.name+": "+err.Error())
	} else {
		m.bus.Publish(0, "spawn", s.name)
	}
	// The attach checkpoint may have degraded the writer before the
	// session was published, in which case OnError's markCrashed found
	// no session to mark. Re-check now that it is visible.
	if err == nil && jw != nil {
		if jerr := jw.Err(); jerr != nil {
			m.markCrashed(s.name, fmt.Sprintf("journal: %v", jerr))
		}
	}
}

// build assembles one session: world, limits, journal (lock, recovery,
// writer), crash hooks, and the sessions-table file.
func (m *Manager) build(name string) (*world.World, *journal.Writer, *journal.DirLock, error) {
	w, err := m.cfg.Build(name, m.cfg.Width, m.cfg.Height)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("sessiond: build %s: %w", name, err)
	}
	h := w.Help
	h.SetLimits(core.Limits{
		MaxProcs:    m.cfg.MaxProcs,
		ErrorsCap:   m.cfg.ErrorsCap,
		QueueDepth:  m.cfg.QueueDepth,
		MaxBytes:    m.cfg.MaxSessionBytes,
		MaxResident: m.cfg.MaxResident,
	})
	// The daemon-wide budget gates: consulted under this session's
	// actor lock, they take the Manager lock and sum every session's
	// lock-free counters — the sanctioned lock order.
	h.SetMemGate(m.memGate)
	h.SetProcGate(m.procGate)

	var jw *journal.Writer
	var lock *journal.DirLock
	if m.cfg.JournalRoot != "" || m.cfg.JournalFS != nil {
		jfs, err := m.journalFS(name)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("sessiond: journal %s: %w", name, err)
		}
		lock, err = journal.AcquireLock(jfs)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("sessiond: journal %s: %w", name, err)
		}
		if hasCheckpoint(jfs) {
			if _, err := core.RecoverSession(h, jfs); err != nil {
				lock.Release()
				return nil, nil, nil, fmt.Errorf("sessiond: recover %s: %w", name, err)
			}
		}
		jw, err = journal.Open(jfs, journal.Config{Fsync: m.cfg.Fsync})
		if err != nil {
			lock.Release()
			return nil, nil, nil, fmt.Errorf("sessiond: journal %s: %w", name, err)
		}
		jw.OnError = func(err error) {
			// The writer is degraded: ops are being dropped, so the
			// session's durability story is over. Contain it.
			h.ReportFault("journal (degraded)", err)
			m.markCrashed(name, fmt.Sprintf("journal: %v", err))
		}
		h.AttachJournal(jw, 0)
	}

	// A recovered panic inside the session's actor: the core has
	// already flushed the journal and written a crash report; the
	// manager's job is the table update and killing leftover work.
	// OnCrash runs under the session's actor lock, which may be taken
	// before the Manager lock (never the reverse).
	h.OnCrash = func(where string, err error) {
		m.markCrashed(name, fmt.Sprintf("%s: %v", where, err))
	}

	// The session's own events feed the daemon-level stream, prefixed
	// "<session>/<window>" so one aggregated log covers every hosted
	// session. Trace events stay local — every span forwarded from every
	// session would drown the lifecycle signal. The tap runs outside the
	// session bus's lock and the daemon bus never calls back into a
	// session, so the session-actor -> daemon-bus lock order is safe.
	h.Notify.SetTap(func(ev notify.Event) {
		if ev.Kind == "trace" {
			return
		}
		m.bus.Publish(0, ev.Kind, fmt.Sprintf("%s/%d %s", name, ev.Window, ev.Detail))
	})

	// Every session reads the shared table at /mnt/help/sessions and
	// the daemon-level event stream at /mnt/help/daemonlog. The table
	// device computes its content under the reading session's actor
	// lock, then the Manager lock — the sanctioned order — touching
	// other sessions only through lock-free counters.
	cleanup := func() {
		if jw != nil {
			jw.Close()
		}
		lock.Release()
	}
	if err := h.FS.RegisterDevice(world.MountRoot+"/sessions", tableDevice{m}); err != nil {
		cleanup()
		return nil, nil, nil, fmt.Errorf("sessiond: %s: %w", name, err)
	}
	if err := h.FS.RegisterDevice(world.MountRoot+"/daemonlog", notify.Device{Bus: m.bus}); err != nil {
		cleanup()
		return nil, nil, nil, fmt.Errorf("sessiond: %s: %w", name, err)
	}
	// The session's /mnt/help/stats serves that session's own registry,
	// but the budget governor and the wire's backpressure counters live
	// on the Manager's — overlay the file so the documented
	// daemon.budget.* and srvnet.backpressure.* lines show up beside
	// the session's, one stats file for the operator.
	if r := m.cfg.Obs; r != nil && r != h.Obs {
		if err := h.FS.RegisterDevice(world.MountRoot+"/stats", statsDevice{sess: h.Obs, daemon: r}); err != nil {
			cleanup()
			return nil, nil, nil, fmt.Errorf("sessiond: %s: %w", name, err)
		}
	}
	return w, jw, lock, nil
}

// Bus exposes the daemon-level event stream, the same one
// /mnt/help/daemonlog serves: hosts embed it (a monitoring window, an
// operator tail) and tests subscribe to assert lifecycle coverage.
func (m *Manager) Bus() *notify.Bus { return m.bus }

func (m *Manager) journalFS(name string) (journal.Fsys, error) {
	if m.cfg.JournalFS != nil {
		return m.cfg.JournalFS(name)
	}
	return journal.DirFS(filepath.Join(m.cfg.JournalRoot, name))
}

// hasCheckpoint reports whether the journal directory holds a
// checkpoint to recover from; a fresh directory does not, and
// RecoverSession would refuse it.
func hasCheckpoint(fsys journal.Fsys) bool {
	names, err := fsys.List()
	if err != nil {
		return false
	}
	for _, n := range names {
		if n == "checkpoint" {
			return true
		}
	}
	return false
}

// markCrashed moves a session to crashed and kills its remaining work.
// Callable from under the crashed session's own actor lock (OnCrash),
// so the kill happens on a fresh goroutine.
func (m *Manager) markCrashed(name, reason string) {
	m.mu.Lock()
	s := m.sessions[name]
	if s == nil || s.w == nil || s.st != stateActive {
		m.mu.Unlock()
		return
	}
	s.st = stateCrashed
	s.reason = reason
	h := s.w.Help
	m.mu.Unlock()
	m.cCrashes.Inc()
	if m.cfg.Obs != nil {
		m.cfg.Obs.Event("sessiond.crash", name+": "+reason)
	}
	m.bus.Publish(0, "crash", name+": "+reason)
	go h.KillAll()
}

// CrashSession marks a session crashed from outside (an operator, a
// watchdog). It reports whether the session existed and was active.
func (m *Manager) CrashSession(name, reason string) bool {
	m.mu.Lock()
	s := m.sessions[name]
	active := s != nil && s.w != nil && s.st == stateActive
	m.mu.Unlock()
	if active {
		m.markCrashed(name, reason)
	}
	return active
}

// SessionCount reports live (non-closed) sessions.
func (m *Manager) SessionCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// Attached reports the attachment count of a session, -1 if absent.
func (m *Manager) Attached(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.sessions[name]; ok {
		return s.attached
	}
	return -1
}

// TableText renders the session table, one line per session:
//
//	name state attached windows procs age idle [reason]
//
// sorted by name. It is what /mnt/help/sessions serves.
func (m *Manager) TableText() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.sessions))
	for n := range m.sessions {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	now := time.Now()
	for _, n := range names {
		s := m.sessions[n]
		if s.w == nil {
			fmt.Fprintf(&b, "%s spawning\n", n)
			continue
		}
		h := s.w.Help
		fmt.Fprintf(&b, "%s %s attached=%d windows=%d procs=%d age=%s idle=%s",
			n, s.st, s.attached, h.WindowCount(), h.ProcCount(),
			now.Sub(s.born).Round(time.Second), now.Sub(s.lastUsed).Round(time.Second))
		if s.reason != "" {
			fmt.Fprintf(&b, " reason=%q", s.reason)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// reaper closes sessions nobody has touched for TTL.
func (m *Manager) reaper() {
	defer close(m.reaperDone)
	tick := m.cfg.TTL / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-m.reaperStop:
			return
		case <-t.C:
			m.ReapIdle()
		}
	}
}

// ReapIdle closes every session that is unattached and idle past TTL,
// returning how many were reaped. Exported so tests (and an operator
// through a ctl file) can force a pass without waiting for the ticker.
func (m *Manager) ReapIdle() int {
	if m.cfg.TTL <= 0 {
		return 0
	}
	cutoff := time.Now().Add(-m.cfg.TTL)
	m.mu.Lock()
	var victims []*session
	for _, s := range m.sessions {
		if s.w != nil && s.attached == 0 && s.lastUsed.Before(cutoff) {
			victims = append(victims, s)
			delete(m.sessions, s.name)
		}
	}
	m.mu.Unlock()
	for _, s := range victims {
		m.closeSession(s, 2*time.Second)
		m.cReaps.Inc()
		m.bus.Publish(0, "reap", s.name)
	}
	return len(victims)
}

// closeSession retires one session: kill its work, wait briefly for
// quiescence, checkpoint and flush its journal, release its lock. Must
// not be called with the Manager lock held.
func (m *Manager) closeSession(s *session, wait time.Duration) {
	h := s.w.Help
	h.KillAll()
	h.WaitIdleFor(wait)
	// SyncJournal sweeps, checkpoints, and flushes; on a crashed
	// session the writer may be degraded — the error is already
	// reported, nothing more to do with it here.
	h.SyncJournal()
	if s.jw != nil {
		s.jw.Close()
	}
	s.lock.Release()
	m.mu.Lock()
	s.st = stateClosed
	m.mu.Unlock()
	m.bus.Publish(0, "close", s.name)
}

// Drain is the bounded graceful shutdown: new attaches are refused
// with ErrDraining, the reaper stops, and every session is closed in
// parallel — commands killed, journals checkpointed, flushed, and
// unlocked — within ctx's budget. When ctx expires first, ctx.Err() is
// returned; sessions already closed stayed closed, and the rest have
// at least had their work killed.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil
	}
	m.draining = true
	var all []*session
	for _, s := range m.sessions {
		all = append(all, s)
	}
	m.mu.Unlock()
	m.bus.Publish(0, "drain", fmt.Sprintf("%d sessions", len(all)))

	if m.reaperStop != nil {
		close(m.reaperStop)
		<-m.reaperDone
	}

	wait := 2 * time.Second
	if dl, ok := ctx.Deadline(); ok {
		if d := time.Until(dl) / 2; d < wait {
			wait = d
		}
	}
	var wg sync.WaitGroup
	for _, s := range all {
		wg.Add(1)
		go func(s *session) {
			defer wg.Done()
			<-s.ready
			if s.err != nil {
				return
			}
			m.closeSession(s, wait)
		}(s)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// tableDevice serves the Manager's table as a read-only file, contents
// computed at open.
type tableDevice struct{ m *Manager }

func (d tableDevice) OpenDevice(mode int) (vfs.DeviceFile, error) {
	return &tableHandle{content: d.m.TableText()}, nil
}

// statsDevice overlays a hosted session's /mnt/help/stats with the
// daemon's instruments: the session registry's lines followed by the
// Manager registry's (daemon.budget.*, srvnet.backpressure.*, the mux
// listener's srvnet.* totals), contents computed at open like the
// table.
type statsDevice struct{ sess, daemon *obs.Registry }

func (d statsDevice) OpenDevice(mode int) (vfs.DeviceFile, error) {
	var text string
	if d.sess != nil {
		text = d.sess.StatsText()
	}
	return &tableHandle{content: text + d.daemon.StatsText()}, nil
}

type tableHandle struct{ content string }

func (h *tableHandle) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(h.content)) {
		return 0, io.EOF
	}
	n := copy(p, h.content[off:])
	if int(off)+n == len(h.content) {
		return n, io.EOF
	}
	return n, nil
}

func (h *tableHandle) WriteAt(p []byte, off int64) (int, error) {
	return 0, fmt.Errorf("sessiond: sessions table is read-only: %w", vfs.ErrPerm)
}

func (h *tableHandle) Close() error { return nil }
