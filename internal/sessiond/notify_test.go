package sessiond

import (
	"strings"
	"testing"

	"repro/internal/world"
)

// TestDaemonStreamCoversLifecycle: the daemon-level event stream
// carries manager lifecycle transitions and the per-session events,
// the latter prefixed "session/window" so one subscriber can follow
// every session at once.
func TestDaemonStreamCoversLifecycle(t *testing.T) {
	m, rec := newManager(t, nil)
	sub := m.Bus().Subscribe(0, 0, 0)
	defer sub.Close()

	fsA, detach, err := m.AttachSession("a")
	if err != nil {
		t.Fatal(err)
	}
	// The daemon stream is served inside every session's namespace.
	if _, err := fsA.Stat(world.MountRoot + "/daemonlog"); err != nil {
		t.Errorf("daemonlog not in session namespace: %v", err)
	}
	// Session activity is forwarded: a window created inside "a"
	// becomes a daemon-stream event attributed to a/1.
	rec.world("a").Help.NewWindow()
	detach()

	seen := map[string]bool{}
	forwarded := false
	waitUntil(t, "daemon stream events", func() bool {
		for {
			ev, ok := sub.TryNext()
			if !ok {
				break
			}
			seen[ev.Kind] = true
			if ev.Kind == "new" && strings.HasPrefix(ev.Detail, "a/1") {
				forwarded = true
			}
		}
		return seen["spawn"] && seen["attach"] && seen["detach"] && forwarded
	})
}

// TestDaemonStreamReportsCrashAndDrain: containment and shutdown are
// visible on the same stream.
func TestDaemonStreamReportsCrashAndDrain(t *testing.T) {
	m, rec := newManager(t, nil)
	sub := m.Bus().Subscribe(0, 0, 0)
	defer sub.Close()

	if _, _, err := m.AttachSession("a"); err != nil {
		t.Fatal(err)
	}
	// Kill the session's serving goroutine the contained way.
	m.markCrashed("a", "test-induced")
	_ = rec

	seen := map[string]bool{}
	waitUntil(t, "crash event", func() bool {
		for {
			ev, ok := sub.TryNext()
			if !ok {
				break
			}
			seen[ev.Kind] = true
		}
		return seen["crash"]
	})
}
