package sessiond

import (
	"fmt"
	"time"

	"repro/internal/vfs"
)

// The daemon-wide budget governor. One process hosts many sessions, and
// the per-session limits (MaxProcs, MaxBytes) only bound each tenant in
// isolation: a thousand polite sessions can still exhaust the machine.
// The governor bounds the totals — resident buffer bytes and live
// commands summed across every hosted session — and refuses admission
// with a typed vfs.BusyError carrying a retry-after hint, so clients
// back off instead of redialing into the same wall.
//
// Totals are summed under the Manager lock from each session's
// lock-free atomics (Help.MemBytes, Help.ProcCount), honoring the lock
// order: gates run under the calling session's actor lock, which may
// take the Manager lock, never the reverse.

// DefaultRetryAfter is the retry hint stamped on budget refusals when
// Config.RetryAfter is zero.
const DefaultRetryAfter = 250 * time.Millisecond

func (m *Manager) retryAfter() time.Duration {
	if m.cfg.RetryAfter > 0 {
		return m.cfg.RetryAfter
	}
	return DefaultRetryAfter
}

// busy builds the typed refusal every budget check returns: it wraps
// vfs.ErrBusy (so srvnet maps it to the busy wire code) and carries the
// daemon's retry-after hint (so the wire stamps response.Retry and
// ReconnectingClient waits that long instead of hammering).
func (m *Manager) busy(msg string) error {
	return &vfs.BusyError{Msg: msg, After: m.retryAfter()}
}

// memBytesLocked sums resident buffer bytes across live sessions.
// Caller holds m.mu; reads only lock-free session atomics.
func (m *Manager) memBytesLocked() int64 {
	var total int64
	for _, s := range m.sessions {
		if s.w != nil && s.st != stateClosed {
			total += s.w.Help.MemBytes()
		}
	}
	return total
}

// totalProcsLocked sums live external commands across live sessions.
// Caller holds m.mu; reads only lock-free session atomics.
func (m *Manager) totalProcsLocked() int {
	total := 0
	for _, s := range m.sessions {
		if s.w != nil && s.st != stateClosed {
			total += s.w.Help.ProcCount()
		}
	}
	return total
}

// MemBytes reports the daemon's total resident buffer bytes, summed
// across sessions. It is the daemon.budget.bytes gauge.
func (m *Manager) MemBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.memBytesLocked()
}

// TotalProcs reports the daemon's total live external commands. It is
// the daemon.budget.procs gauge.
func (m *Manager) TotalProcs() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totalProcsLocked()
}

// memGate is installed into every hosted session via core.SetMemGate:
// consulted (with the projected resident-byte increase) before a large
// body load, under that session's actor lock. Refusals count
// daemon.budget.refused.mem.
func (m *Manager) memGate(addBytes int64) error {
	if m.cfg.MaxBytes <= 0 {
		return nil
	}
	m.mu.Lock()
	total := m.memBytesLocked()
	m.mu.Unlock()
	if total+addBytes > m.cfg.MaxBytes {
		m.cMemRefused.Inc()
		if m.cfg.Obs != nil {
			m.cfg.Obs.Event("limit", fmt.Sprintf("daemon memory budget: %d+%d > %d bytes", total, addBytes, m.cfg.MaxBytes))
		}
		return m.busy(fmt.Sprintf("sessiond: daemon memory budget (%d bytes) spent", m.cfg.MaxBytes))
	}
	return nil
}

// procGate is installed into every hosted session via core.SetProcGate:
// consulted after the per-session MaxProcs bound, before launching a
// command. Refusals count daemon.budget.refused.proc.
func (m *Manager) procGate() error {
	if m.cfg.MaxTotalProcs <= 0 {
		return nil
	}
	m.mu.Lock()
	total := m.totalProcsLocked()
	m.mu.Unlock()
	if total >= m.cfg.MaxTotalProcs {
		m.cProcRefused.Inc()
		if m.cfg.Obs != nil {
			m.cfg.Obs.Event("limit", fmt.Sprintf("daemon command budget: %d live, max %d", total, m.cfg.MaxTotalProcs))
		}
		return m.busy(fmt.Sprintf("sessiond: daemon command budget (%d live) spent", m.cfg.MaxTotalProcs))
	}
	return nil
}

// admitSpawnLocked is the admission check for creating a brand-new
// session (first attach). Attaching to an existing session is always
// admitted — the world is already resident — but a spawn allocates a
// whole new world, so it is refused while the daemon's memory budget is
// already spent. Caller holds m.mu.
func (m *Manager) admitSpawnLocked() error {
	if len(m.sessions) >= m.cfg.MaxSessions {
		m.cAttachRefused.Inc()
		return fmt.Errorf("%w (%d live)", ErrMaxSessions, len(m.sessions))
	}
	if m.cfg.MaxBytes > 0 && m.memBytesLocked() >= m.cfg.MaxBytes {
		m.cAttachRefused.Inc()
		return m.busy(fmt.Sprintf("sessiond: daemon memory budget (%d bytes) spent, refusing new session", m.cfg.MaxBytes))
	}
	return nil
}
