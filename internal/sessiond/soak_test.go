package sessiond

import (
	"context"
	"math/rand"
	"net"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/loadgen"
	"repro/internal/srvnet"
)

// soakDuration is short by default so the soak rides along with tier-1;
// `make soak` stretches it via SOAK_SECONDS.
func soakDuration() time.Duration {
	if s := os.Getenv("SOAK_SECONDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return time.Duration(n) * time.Second
		}
	}
	return 1500 * time.Millisecond
}

// TestDaemonSoak churns the full daemon stack — Manager behind the mux
// server on a real TCP listener — by replaying the recorded gesture
// trace (internal/loadgen, the same workload `make chaos` scales up) in
// concurrent waves over a small shared session pool, with injected
// session crashes and the reaper retiring idle sessions underneath. At
// the end a graceful drain must succeed and no goroutines may leak.
func TestDaemonSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	runtime.GC()
	before := runtime.NumGoroutine()

	jfs := newMemJournals()
	m, _ := newManager(t, func(c *Config) {
		c.TTL = 40 * time.Millisecond
		c.JournalFS = jfs.open
		c.MaxSessions = 64
	})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := srvnet.NewMuxServer(m)
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		srv.Serve(l)
	}()
	addr := l.Addr().String()

	const sessionPool = 4 // s0..s3, contended by every worker
	var (
		ops     atomic.Int64 // successful namespace operations
		kills   atomic.Int64 // injected session crashes
		stop    = make(chan struct{})
		workers sync.WaitGroup
	)
	const nworkers = 4
	for i := 0; i < nworkers; i++ {
		workers.Add(1)
		go func(seed int64) {
			defer workers.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				// One wave: a couple of users replaying the editing trace
				// over the shared sessions. Errors are expected citizens
				// here — crashed sessions and the final drain refuse ops —
				// so only clean ops are counted toward progress.
				st, err := loadgen.Replay(loadgen.Config{
					Addr:          addr,
					Users:         2,
					Sessions:      sessionPool,
					Iterations:    1 + rng.Intn(3),
					Seed:          rng.Int63(),
					SessionPrefix: "s",
					BusyBudget:    200 * time.Millisecond,
				})
				if err != nil {
					t.Errorf("replay config: %v", err)
					return
				}
				ops.Add(st.Ops - st.Errors - st.Draining - st.Degraded)
				if st.Draining > 0 {
					return // drain has begun
				}
				if rng.Intn(6) == 0 &&
					m.CrashSession("s"+strconv.Itoa(rng.Intn(sessionPool)), "soak: injected kill") {
					kills.Add(1)
				}
			}
		}(int64(i + 1))
	}

	time.Sleep(soakDuration())
	close(stop)
	workers.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown after soak: %v", err)
	}
	<-serveDone
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("Drain after soak: %v", err)
	}

	if ops.Load() == 0 {
		t.Fatal("soak performed no successful operations")
	}
	t.Logf("soak: %d clean ops, %d injected kills, %d sessions at drain",
		ops.Load(), kills.Load(), m.SessionCount())

	waitUntil(t, "goroutines to settle after soak", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	})
}
