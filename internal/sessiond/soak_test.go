package sessiond

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/srvnet"
	"repro/internal/world"
)

// soakDuration is short by default so the soak rides along with tier-1;
// `make soak` stretches it via SOAK_SECONDS.
func soakDuration() time.Duration {
	if s := os.Getenv("SOAK_SECONDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return time.Duration(n) * time.Second
		}
	}
	return 1500 * time.Millisecond
}

// TestDaemonSoak churns the full daemon stack — Manager behind the mux
// server on a real TCP listener — with concurrent attach/detach cycles,
// namespace traffic, injected session crashes, and abrupt disconnects,
// while the reaper retires idle sessions underneath. At the end a
// graceful drain must succeed and no goroutines may leak.
func TestDaemonSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	runtime.GC()
	before := runtime.NumGoroutine()

	jfs := newMemJournals()
	m, _ := newManager(t, func(c *Config) {
		c.TTL = 40 * time.Millisecond
		c.JournalFS = jfs.open
		c.MaxSessions = 64
	})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := srvnet.NewMuxServer(m)
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		srv.Serve(l)
	}()
	addr := l.Addr().String()

	var (
		ops     atomic.Int64 // successful namespace operations
		kills   atomic.Int64 // injected session crashes
		stop    = make(chan struct{})
		workers sync.WaitGroup
	)
	const nworkers = 8
	for i := 0; i < nworkers; i++ {
		workers.Add(1)
		go func(seed int64) {
			defer workers.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("s%d", rng.Intn(10))
				c, err := srvnet.Dial(addr)
				if err != nil {
					return // listener closed: drain has begun
				}
				// Attach may be refused (session crashed, server
				// draining); the worker just moves on.
				if err := c.Attach(name); err != nil {
					c.Close()
					continue
				}
				for j := 1 + rng.Intn(5); j > 0; j-- {
					var err error
					switch rng.Intn(4) {
					case 0:
						_, err = c.ReadFile(world.MountRoot + "/index")
					case 1:
						err = c.WriteFile("/tmp/soak", []byte(name))
					case 2:
						_, err = c.ReadFile(world.MountRoot + "/sessions")
					case 3:
						// Journaled mutation: opens a window.
						err = c.WriteFile(world.MountRoot+"/ctl",
							[]byte("open /usr/rob/src/help/help.c\n"))
					}
					if err == nil {
						ops.Add(1)
					}
				}
				if rng.Intn(12) == 0 && m.CrashSession(name, "soak: injected kill") {
					kills.Add(1)
				}
				// Half the time hang up without a graceful goodbye; the
				// server must treat it like any detach.
				c.Close()
			}
		}(int64(i + 1))
	}

	time.Sleep(soakDuration())
	close(stop)
	workers.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown after soak: %v", err)
	}
	<-serveDone
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("Drain after soak: %v", err)
	}

	if ops.Load() == 0 {
		t.Fatal("soak performed no successful operations")
	}
	t.Logf("soak: %d ops, %d injected kills, %d sessions at drain",
		ops.Load(), kills.Load(), m.SessionCount())

	waitUntil(t, "goroutines to settle after soak", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	})
}
