package helpfs

import (
	"strings"
	"testing"

	"repro/internal/vfs"
)

// panicDevice blows up at a chosen stage of its life cycle.
type panicDevice struct {
	onOpen  bool
	onRead  bool
	onWrite bool
	onClose bool
}

func (d panicDevice) OpenDevice(mode int) (vfs.DeviceFile, error) {
	if d.onOpen {
		panic("device open bug")
	}
	return panicFile{d: d}, nil
}

type panicFile struct{ d panicDevice }

func (f panicFile) ReadAt(p []byte, off int64) (int, error) {
	if f.d.onRead {
		panic("device read bug")
	}
	return 0, nil
}

func (f panicFile) WriteAt(p []byte, off int64) (int, error) {
	if f.d.onWrite {
		panic("device write bug")
	}
	return len(p), nil
}

func (f panicFile) Close() error {
	if f.d.onClose {
		panic("device close bug")
	}
	return nil
}

// Every stage of a buggy device — open, read, write, close — must come
// back to the client as an error, never a crash, and each recovery is
// counted and reported in the Errors window.
func TestGuardConvertsPanics(t *testing.T) {
	h, fs, s := attach(t)

	register := func(name string, d vfs.Device) {
		t.Helper()
		if err := s.register("/mnt/help/"+name, d); err != nil {
			t.Fatal(err)
		}
	}
	register("boom-open", panicDevice{onOpen: true})
	register("boom-read", panicDevice{onRead: true})
	register("boom-write", panicDevice{onWrite: true})
	register("boom-close", panicDevice{onClose: true})

	if _, err := fs.Open("/mnt/help/boom-open", vfs.OREAD); err == nil {
		t.Fatal("open panic not converted to an error")
	}

	f, err := fs.Open("/mnt/help/boom-read", vfs.OREAD)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(make([]byte, 8)); err == nil {
		t.Fatal("read panic not converted to an error")
	}
	f.Close()

	f, err = fs.Open("/mnt/help/boom-write", vfs.ORDWR)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err == nil {
		t.Fatal("write panic not converted to an error")
	}
	f.Close()

	f, err = fs.Open("/mnt/help/boom-close", vfs.OREAD)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err == nil {
		t.Fatal("close panic not converted to an error")
	}

	if n := h.PanicCount(); n != 4 {
		t.Fatalf("PanicCount = %d, want 4", n)
	}
	errs := h.Errors().Body.String()
	for _, msg := range []string{"device open bug", "device read bug", "device write bug", "device close bug"} {
		if !strings.Contains(errs, msg) {
			t.Fatalf("Errors window missing %q:\n%s", msg, errs)
		}
	}

	// The session survived: the service still works end to end.
	w := h.NewWindow()
	w.Body.SetString("still alive")
	data, err := fs.ReadFile(s.winDir(w.ID) + "/body")
	if err != nil || string(data) != "still alive" {
		t.Fatalf("service dead after recovered panics: %q, %v", data, err)
	}
}

// The real devices are all registered behind the guard; a panic deep in
// a ctl handler (forced here by closing the window out from under an
// open handle, then using an unknown message path that trips the
// normal error) must never escape through the vfs boundary. This is a
// smoke test that the wrapping is actually installed.
func TestRealDevicesAreGuarded(t *testing.T) {
	_, fs, _ := attach(t)
	f, err := fs.Open("/mnt/help/new/ctl", vfs.ORDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("select not-numbers\n")); err == nil {
		t.Fatal("bad ctl message accepted")
	}
}
