package helpfs

import (
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/vfs"
)

// guardDevice isolates the file service from bugs in the handlers it
// wraps: a panic while serving a client becomes an I/O error on that
// client's file descriptor, reported through Help.PanicReport (which
// flushes the journal and writes a crash report) — it never takes the
// whole session down. The mutating entry points also sweep the journal
// afterwards, so state changed through /mnt/help is as durable as state
// changed by a gesture.
type guardDevice struct {
	s    *Service
	name string
	dev  vfs.Device
}

// guardFiles are pooled: opens on the hot path (bodyapp, ctl) would
// otherwise pay one allocation each just to box the wrapper. Close
// returns the wrapper; a file used after Close was already broken, and
// now additionally sees a zeroed wrapper rather than its old handler.
var guardFilePool = sync.Pool{New: func() any { return new(guardFile) }}

// Gen forwards the inner device's edit generation (vfs.GenDevice), so
// guarding a device does not hide its generation from srvnet's cache
// plumbing. A panic while computing it degrades to "no generation"
// rather than taking down the reader.
func (g guardDevice) Gen() (gen uint64) {
	gd, ok := g.dev.(vfs.GenDevice)
	if !ok {
		return 0
	}
	defer func() {
		if recover() != nil {
			gen = 0
		}
	}()
	return gd.Gen()
}

// ReadWait forwards the blocking-read extension (vfs.WaitDevice) when
// the inner device supports it; anything else reports ErrNotWaitable
// and vfs degrades to a snapshot read. Unlike every other guarded op it
// runs WITHOUT the actor lock — that is the extension's contract — so
// the panic path must not call PanicReport directly (it expects the
// lock held); it reports through the apply queue instead.
func (g guardDevice) ReadWait(since uint64, stop <-chan struct{}, timeout time.Duration) (data []byte, next uint64, err error) {
	wd, ok := g.dev.(vfs.WaitDevice)
	if !ok {
		return nil, 0, vfs.ErrNotWaitable
	}
	defer func() {
		if r := recover(); r != nil {
			op := "readwait " + g.name
			g.s.h.ReportPanicAsync("helpfs "+op, r, debug.Stack())
			err = fmt.Errorf("helpfs: %s: internal error: %v", op, r)
		}
	}()
	return wd.ReadWait(since, stop, timeout)
}

func (g guardDevice) OpenDevice(mode int) (f vfs.DeviceFile, err error) {
	// finish recovers first, then sweeps: opening new/ctl creates a
	// window, and the creation must be journaled even when a later
	// handler panics.
	defer g.s.finish("open", g.name, &err)
	inner, err := g.dev.OpenDevice(mode)
	if err != nil {
		return nil, err
	}
	gf := guardFilePool.Get().(*guardFile)
	gf.s, gf.name, gf.f = g.s, g.name, inner
	return gf, nil
}

type guardFile struct {
	s    *Service
	name string
	f    vfs.DeviceFile
}

func (g *guardFile) ReadAt(p []byte, off int64) (n int, err error) {
	defer g.s.guard("read", g.name, &err)
	return g.f.ReadAt(p, off)
}

func (g *guardFile) WriteAt(p []byte, off int64) (n int, err error) {
	defer g.s.finish("write", g.name, &err)
	return g.f.WriteAt(p, off)
}

// Close sweeps too: buffer handles apply their buffered writes here, so
// this is where a body replacement or bodyapp append actually lands.
func (g *guardFile) Close() (err error) {
	defer g.s.finish("close", g.name, &err)
	inner := g.f
	g.s, g.name, g.f = nil, "", nil
	guardFilePool.Put(g)
	return inner.Close()
}

// guard converts an in-flight panic into an error on the operation that
// triggered it, reporting through the session's crash machinery. The
// happy path must stay allocation-free: anything string-built here
// (operation labels, reports) is assembled only inside the recover
// branch.
func (s *Service) guard(verb, name string, err *error) {
	if r := recover(); r != nil {
		op := verb + " " + name
		s.h.PanicReport("helpfs "+op, r, debug.Stack())
		*err = fmt.Errorf("helpfs: %s: internal error: %v", op, r)
	}
}

// finish is the one deferred call on each mutating entry point: recover
// any panic, then sweep the journal. One defer instead of two keeps the
// guard cheap enough to leave on unconditionally.
func (s *Service) finish(verb, name string, err *error) {
	if r := recover(); r != nil {
		op := verb + " " + name
		s.h.PanicReport("helpfs "+op, r, debug.Stack())
		*err = fmt.Errorf("helpfs: %s: internal error: %v", op, r)
	}
	s.h.JournalSweep()
}

// register installs a device behind the panic guard.
func (s *Service) register(path string, d vfs.Device) error {
	return s.fs.RegisterDevice(path, guardDevice{s: s, name: path, dev: d})
}
