package helpfs

import (
	"time"

	"repro/internal/obs"
)

// kindObs instruments one kind of served file (tag, body, bodyapp,
// ctl, index): operation counts plus an open-to-close latency
// histogram. A nil kindObs (no registry installed) is a no-op, and the
// handles carry it as a plain field so instrumentation adds no
// allocations to the per-open path.
type kindObs struct {
	opens  *obs.Counter
	reads  *obs.Counter
	writes *obs.Counter
	lat    *obs.Histogram
}

// open counts an open and starts the latency clock; the zero time it
// returns when uninstrumented makes close a no-op too.
func (k *kindObs) open() time.Time {
	if k == nil {
		return time.Time{}
	}
	k.opens.Inc()
	return time.Now()
}

func (k *kindObs) read() {
	if k != nil {
		k.reads.Inc()
	}
}

func (k *kindObs) write() {
	if k != nil {
		k.writes.Inc()
	}
}

func (k *kindObs) close(t0 time.Time) {
	if k == nil || t0.IsZero() {
		return
	}
	k.lat.Observe(time.Since(t0))
}

// initObs resolves the per-kind instruments from the help instance's
// registry. With no registry the maps stay empty and every lookup
// yields a nil (no-op) kindObs.
func (s *Service) initObs() {
	s.kinds = map[string]*kindObs{}
	s.histos = map[string]bool{}
	r := s.h.Obs
	if r == nil {
		return
	}
	for _, kind := range []string{"tag", "body", "bodyapp", "ctl", "index"} {
		s.kinds[kind] = &kindObs{
			opens:  r.Counter("helpfs." + kind + ".opens"),
			reads:  r.Counter("helpfs." + kind + ".reads"),
			writes: r.Counter("helpfs." + kind + ".writes"),
			lat:    r.Histogram("helpfs." + kind),
		}
	}
}

// registerObsFiles serves the registry through the file interface:
//
//	/mnt/help/stats         flat `key value` lines, every counter/gauge
//	/mnt/help/trace         the last-N spans, one per line
//	/mnt/help/histo/<name>  one latency histogram, flat text
//
// so a shell script reads a latency histogram the same way it reads a
// window body.
func (s *Service) registerObsFiles() error {
	r := s.h.Obs
	if r == nil {
		return nil
	}
	if err := s.fs.RegisterDevice(s.root+"/stats", readDevice{content: r.StatsText}); err != nil {
		return err
	}
	if err := s.fs.RegisterDevice(s.root+"/trace", readDevice{content: r.TraceText}); err != nil {
		return err
	}
	if err := s.fs.MkdirAll(s.root + "/histo"); err != nil {
		return err
	}
	return s.SyncHistograms()
}

// SyncHistograms materializes /mnt/help/histo/<name> for histograms
// created since Attach (wiring a remote client adds srvnet.* ones).
// Call it from the event loop, like every other namespace mutation.
func (s *Service) SyncHistograms() error {
	r := s.h.Obs
	if r == nil {
		return nil
	}
	for _, name := range r.HistogramNames() {
		if s.histos[name] {
			continue
		}
		hist := r.Histogram(name)
		if err := s.fs.RegisterDevice(s.root+"/histo/"+name, readDevice{content: hist.Text}); err != nil {
			return err
		}
		s.histos[name] = true
	}
	return nil
}
