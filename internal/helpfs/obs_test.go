package helpfs

import (
	"strings"
	"testing"

	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/vfs"
)

// statVal extracts the integer value of key from /mnt/help/stats text.
func statVal(t *testing.T, fs *vfs.FS, key string) string {
	t.Helper()
	data, err := fs.ReadFile("/mnt/help/stats")
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if k, v, ok := strings.Cut(line, " "); ok && k == key {
			return v
		}
	}
	return ""
}

// TestStatsFileCountsOps checks that the per-kind counters behind
// /mnt/help/stats move when the corresponding files are used — and that
// reading the meter does not move it.
func TestStatsFileCountsOps(t *testing.T) {
	h, fs, _ := attach(t)
	w := h.NewWindow()
	w.Body.SetString("hello")

	if got := statVal(t, fs, "helpfs.body.reads"); got != "0" {
		t.Fatalf("body.reads before = %q, want 0", got)
	}
	if _, err := fs.ReadFile("/mnt/help/1/body"); err != nil {
		t.Fatal(err)
	}
	if got := statVal(t, fs, "helpfs.body.opens"); got != "1" {
		t.Errorf("body.opens = %q, want 1", got)
	}
	if got := statVal(t, fs, "helpfs.body.reads"); got == "0" || got == "" {
		t.Errorf("body.reads = %q, want > 0", got)
	}

	if err := fs.WriteFile("/mnt/help/1/bodyapp", []byte(" world")); err != nil {
		t.Fatal(err)
	}
	if got := statVal(t, fs, "helpfs.bodyapp.writes"); got == "0" || got == "" {
		t.Errorf("bodyapp.writes = %q, want > 0", got)
	}

	if err := fs.WriteFile("/mnt/help/1/ctl", []byte("name /x\n")); err != nil {
		t.Fatal(err)
	}
	if got := statVal(t, fs, "helpfs.ctl.writes"); got == "0" || got == "" {
		t.Errorf("ctl.writes = %q, want > 0", got)
	}

	if _, err := fs.ReadFile("/mnt/help/index"); err != nil {
		t.Fatal(err)
	}
	if got := statVal(t, fs, "helpfs.index.reads"); got == "0" || got == "" {
		t.Errorf("index.reads = %q, want > 0", got)
	}

	// Reading stats itself repeatedly must not inflate any helpfs meter:
	// a monitor polling the file would otherwise distort what it watches.
	// (vfs.lookup does move — the path lookup is real work — so compare
	// only the helpfs.* lines.)
	helpfsLines := func(data []byte) string {
		var keep []string
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(line, "helpfs.") {
				keep = append(keep, line)
			}
		}
		return strings.Join(keep, "\n")
	}
	before, _ := fs.ReadFile("/mnt/help/stats")
	after, _ := fs.ReadFile("/mnt/help/stats")
	if helpfsLines(before) != helpfsLines(after) {
		t.Errorf("reading stats moved a helpfs meter:\nbefore: %s\nafter: %s", before, after)
	}

	// Latency histograms recorded the closes.
	hist := h.Obs.Histogram("helpfs.body")
	if hist.Count() == 0 {
		t.Error("helpfs.body histogram has no samples")
	}
}

// TestHistoFilesServeRegistryHistograms checks the /histo directory:
// one file per histogram, in the le_us text format, plus SyncHistograms
// picking up histograms created after attach.
func TestHistoFilesServeRegistryHistograms(t *testing.T) {
	h, fs, svc := attach(t)
	w := h.NewWindow()
	w.Body.SetString("x")
	if _, err := fs.ReadFile("/mnt/help/1/body"); err != nil {
		t.Fatal(err)
	}

	data, err := fs.ReadFile("/mnt/help/histo/helpfs.body")
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{"count 1", "sum_us", "max_us", "le_us"} {
		if !strings.Contains(text, want) {
			t.Errorf("histo file missing %q:\n%s", want, text)
		}
	}

	// A histogram created after Attach becomes a file on resync.
	h.Obs.Histogram("late.metric").Observe(1)
	if _, err := fs.ReadFile("/mnt/help/histo/late.metric"); err == nil {
		t.Fatal("late.metric visible before SyncHistograms")
	}
	if err := svc.SyncHistograms(); err != nil {
		t.Fatal(err)
	}
	late, err := fs.ReadFile("/mnt/help/histo/late.metric")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(late), "count 1") {
		t.Errorf("late.metric = %q", late)
	}
}

// TestTraceFileServesSpans checks /mnt/help/trace: spans and events
// appear as one line each, newest last.
func TestTraceFileServesSpans(t *testing.T) {
	h, fs, _ := attach(t)
	h.Obs.Event("boot", "ok")
	sp := h.Obs.StartSpan("exec", "date")
	sp.End()

	data, err := fs.ReadFile("/mnt/help/trace")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("trace lines = %d, want 3:\n%s", len(lines), data)
	}
	// Line 0 is the seq stamp scrapers diff to detect missed windows.
	if !strings.HasPrefix(lines[0], "# seq 2 cap ") {
		t.Errorf("stamp line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "boot") || !strings.Contains(lines[1], "ok") {
		t.Errorf("line 1 = %q", lines[1])
	}
	if !strings.Contains(lines[2], "exec") || !strings.Contains(lines[2], "date") {
		t.Errorf("line 2 = %q", lines[2])
	}
}

// TestObsFilesWithRegistryDetached: with SetObs(nil) the instrumented
// handles must keep working (nil-safe no-ops); stats and trace then
// serve the empty registry state.
func TestObsFilesWithRegistryDetached(t *testing.T) {
	h, fs, _ := attach(t)
	h.SetObs(nil)
	w := h.NewWindow()
	w.Body.SetString("still works")
	data, err := fs.ReadFile("/mnt/help/1/body")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "still works" {
		t.Errorf("body = %q", data)
	}
	// The synthetic files still serve: they are bound to the registry
	// that existed at attach time, not to h.Obs.
	if _, err := fs.ReadFile("/mnt/help/stats"); err != nil {
		t.Fatal(err)
	}
}

// TestNilRegistryService: a Service over a Help with no registry at all
// must attach without the synthetic files and without panics.
func TestNilRegistryService(t *testing.T) {
	var r *obs.Registry
	if r.StatsText() != "" || r.TraceText() != "" {
		t.Error("nil registry text not empty")
	}
}

// The journal shows up in /mnt/help/stats like any other subsystem:
// appends, bytes, batches move as the session mutates.
func TestStatsShowJournal(t *testing.T) {
	h, fs, _ := attach(t)
	jw, err := journal.Open(journal.NewMemFS(), journal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer jw.Close()
	h.AttachJournal(jw, 1<<20)

	w := h.NewWindow()
	w.Body.SetString("journaled text")
	h.JournalSweep()
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}

	for _, key := range []string{"journal.appends", "journal.bytes", "journal.batches"} {
		if got := statVal(t, fs, key); got == "" || got == "0" {
			t.Errorf("%s = %q, want > 0", key, got)
		}
	}
}
