package helpfs

import (
	"strings"
	"testing"
	"time"

	"repro/internal/notify"
)

// TestLogBlocksUntilEvent: a reader parked on /mnt/help/log with
// ReadWait wakes when a window is created and sees the "new" event,
// without ever polling.
func TestLogBlocksUntilEvent(t *testing.T) {
	h, _, _ := attach(t)
	// Concurrent readers go through the serialized view, like every
	// consumer outside the event loop.
	fs := h.SafeFS()
	seq0 := h.Notify.Seq()

	type result struct {
		data []byte
		next uint64
		err  error
	}
	got := make(chan result, 1)
	go func() {
		data, next, err := fs.ReadWait("/mnt/help/log", seq0, nil, 5*time.Second)
		got <- result{data, next, err}
	}()
	time.Sleep(10 * time.Millisecond)
	h.NewWindow()

	select {
	case r := <-got:
		if r.err != nil {
			t.Fatalf("ReadWait: %v", r.err)
		}
		if r.next <= seq0 {
			t.Errorf("resume seq %d, want > %d", r.next, seq0)
		}
		found := false
		for _, line := range strings.Split(strings.TrimRight(string(r.data), "\n"), "\n") {
			if ev, ok := notify.ParseLine(line); ok && ev.Kind == "new" && ev.Window == 1 {
				found = true
			}
		}
		if !found {
			t.Errorf("no new-window event in %q", r.data)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ReadWait never woke on window create")
	}
}

// TestWindowEventFileFilters: /mnt/help/N/event carries only window
// N's events, even while other windows are busy.
func TestWindowEventFileFilters(t *testing.T) {
	h, fs, _ := attach(t)
	h.NewWindow()
	h.NewWindow()
	seq0 := h.Notify.Seq()

	// Edits through the file service sweep the journal, which is the
	// choke point that publishes body events.
	if err := fs.WriteFile("/mnt/help/1/body", []byte("one\n")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/mnt/help/2/body", []byte("two\n")); err != nil {
		t.Fatal(err)
	}

	data, _, err := fs.ReadWait("/mnt/help/1/event", seq0, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		ev, ok := notify.ParseLine(line)
		if !ok {
			continue
		}
		if ev.Window != 1 {
			t.Errorf("window-1 event file leaked %+v", ev)
		}
		if ev.Kind == "body" {
			n++
		}
	}
	if n == 0 {
		t.Errorf("no body event for window 1 in %q", data)
	}
}

// TestEventFileReadOnly: event streams cannot be written.
func TestEventFileReadOnly(t *testing.T) {
	h, fs, _ := attach(t)
	h.NewWindow()
	for _, p := range []string{"/mnt/help/log", "/mnt/help/1/event"} {
		if err := fs.WriteFile(p, []byte("x")); err == nil {
			t.Errorf("write to %s succeeded, want error", p)
		}
	}
}

// TestPlainEventReadDoesNotBlock: an ordinary ReadFile on an event
// device drains whatever is pending and returns — it never parks, so
// cat /mnt/help/log stays safe.
func TestPlainEventReadDoesNotBlock(t *testing.T) {
	h, fs, _ := attach(t)
	h.NewWindow()
	done := make(chan struct{})
	go func() {
		fs.ReadFile("/mnt/help/log")
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("plain ReadFile on /mnt/help/log blocked")
	}
}

// TestEventFileRemovedWithWindow: closing the window removes its event
// file along with the rest of the directory.
func TestEventFileRemovedWithWindow(t *testing.T) {
	h, fs, _ := attach(t)
	w := h.NewWindow()
	if _, err := fs.Stat("/mnt/help/1/event"); err != nil {
		t.Fatalf("event file missing while window live: %v", err)
	}
	h.CloseWindow(w)
	if _, err := fs.Stat("/mnt/help/1/event"); err == nil {
		t.Error("event file survived window close")
	}
}

// TestReadWaitDegradesOnPlainFile: ReadWait on a non-event path is
// just a read — contents come back immediately with the generation.
func TestReadWaitDegradesOnPlainFile(t *testing.T) {
	h, fs, _ := attach(t)
	w := h.NewWindow()
	w.Body.SetString("hello")
	data, gen, err := fs.ReadWait("/mnt/help/1/body", 0, nil, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello" {
		t.Errorf("data = %q", data)
	}
	if gen == 0 {
		t.Error("gen = 0, want the device generation")
	}
}
