// Package helpfs exposes help's window structure as a file service, the
// paper's programming interface: "Each help window is represented by a
// set of files stored in numbered directories. ... Each directory contains
// files such as tag and body, which may be read to recover the contents of
// the corresponding subwindow, and ctl, to which may be written messages
// to effect changes such as insertion and deletion of text."
//
// The service mounts (conventionally) at /mnt/help:
//
//	/mnt/help/index      window number, a tab, and the first line of the tag
//	/mnt/help/procs      live external commands: id, window, runtime, state, name
//	/mnt/help/ctl        service-wide messages: "open name[:addr]"
//	/mnt/help/new/ctl    opening it creates a window placed automatically
//	                     near the current selection; reading it returns the
//	                     new window's number
//	/mnt/help/N/tag      read/write the tag
//	/mnt/help/N/body     read/write the body (write replaces)
//	/mnt/help/N/bodyapp  writes append to the body
//	/mnt/help/N/ctl      control messages, one per line:
//	                       name <file>   set the file name (standard tag)
//	                       tag <text>    set the whole tag line
//	                       clean | dirty mark the body's modified state
//	                       show <addr>   scroll/select an address (27, #5, /x/)
//	                       select Q0 Q1  set the body selection
//	                       delete        close the window
//
// Everything is implemented as vfs synthetic files bound to a live
// core.Help, so shell scripts drive the user interface with cat, echo and
// redirection — "applications (even shell procedures) exploit the
// graphical user interface of the system" without any UI code of their own.
package helpfs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/notify"
	"repro/internal/text"
	"repro/internal/vfs"
)

// Service binds a help instance to a mount point in its namespace.
type Service struct {
	h    *core.Help
	fs   *vfs.FS
	root string
	// kinds maps a served file kind (tag, body, ...) to its
	// instruments; histos tracks which histogram files are registered.
	kinds  map[string]*kindObs
	histos map[string]bool
}

// Attach mounts the service for h at root (normally "/mnt/help") in fs and
// keeps it in sync as windows come and go. Alongside the window files it
// serves the observability files (stats, trace, histo/<name>) when h
// carries a registry.
func Attach(h *core.Help, fs *vfs.FS, root string) (*Service, error) {
	s := &Service{h: h, fs: fs, root: vfs.Clean(root)}
	s.initObs()
	if err := fs.MkdirAll(s.root); err != nil {
		return nil, err
	}
	if err := s.register(s.root+"/index", readDevice{content: s.index, k: s.kinds["index"]}); err != nil {
		return nil, err
	}
	if err := s.register(s.root+"/procs", readDevice{content: s.procsFile}); err != nil {
		return nil, err
	}
	if err := s.register(s.root+"/new/ctl", &newCtlDevice{s: s}); err != nil {
		return nil, err
	}
	if err := s.register(s.root+"/ctl", &rootCtlDevice{s: s}); err != nil {
		return nil, err
	}
	// The global event log: every bus event (window lifecycle, body/tag
	// edits, exec, trace/fault via the obs sink), one line each. A plain
	// read drains what arrived since open; blocking reads go through
	// vfs.ReadWait / srvnet readwait.
	if err := s.register(s.root+"/log", notify.Device{Bus: h.Notify}); err != nil {
		return nil, err
	}
	if err := s.registerObsFiles(); err != nil {
		return nil, err
	}
	h.SetStatsPath(s.root + "/stats")
	for _, w := range h.Windows() {
		if err := s.addWindow(w); err != nil {
			return nil, err
		}
	}
	prevCreate, prevClose := h.OnWindowCreated, h.OnWindowClosed
	h.OnWindowCreated = func(w *core.Window) {
		if prevCreate != nil {
			prevCreate(w)
		}
		s.addWindow(w)
	}
	h.OnWindowClosed = func(w *core.Window) {
		if prevClose != nil {
			prevClose(w)
		}
		s.removeWindow(w)
	}
	return s, nil
}

// Root returns the mount point.
func (s *Service) Root() string { return s.root }

// index renders the index file: "Each line of this file is a window
// number, a tab, and the first line of the tag."
//
// Device content functions run with the actor lock already held — the
// namespace views that reach them serialize on it — so they use the
// View accessor, never the locking exported methods.
func (s *Service) index() string {
	var b strings.Builder
	for _, w := range s.h.View().Windows() {
		tag := w.Tag.String()
		if i := strings.IndexByte(tag, '\n'); i >= 0 {
			tag = tag[:i]
		}
		fmt.Fprintf(&b, "%d\t%s\n", w.ID, tag)
	}
	return b.String()
}

func (s *Service) winDir(id int) string {
	return fmt.Sprintf("%s/%d", s.root, id)
}

// addWindow registers the numbered directory for w.
func (s *Service) addWindow(w *core.Window) error {
	dir := s.winDir(w.ID)
	id := w.ID
	if err := s.register(dir+"/tag", &bufDevice{s: s, id: id, sub: core.SubTag, k: s.kinds["tag"]}); err != nil {
		return err
	}
	if err := s.register(dir+"/body", &bufDevice{s: s, id: id, sub: core.SubBody, k: s.kinds["body"]}); err != nil {
		return err
	}
	if err := s.register(dir+"/bodyapp", &bufDevice{s: s, id: id, sub: core.SubBody, appendOnly: true, k: s.kinds["bodyapp"]}); err != nil {
		return err
	}
	// Per-window event stream: this window's lifecycle and edit events
	// only, the file a tool watches instead of polling body.
	if err := s.register(dir+"/event", notify.Device{Bus: s.h.Notify, Win: id}); err != nil {
		return err
	}
	return s.register(dir+"/ctl", &ctlDevice{s: s, id: id, k: s.kinds["ctl"]})
}

// removeWindow tears down the numbered directory.
func (s *Service) removeWindow(w *core.Window) {
	dir := s.winDir(w.ID)
	for _, f := range []string{"tag", "body", "bodyapp", "event", "ctl"} {
		s.fs.RemoveDevice(dir + "/" + f)
	}
	s.fs.Remove(dir)
}

// procsFile renders /mnt/help/procs: one live command per line — id,
// originating window (0 if none), runtime, state, and the command text,
// tab-separated with the name last since it may contain blanks.
func (s *Service) procsFile() string {
	var b strings.Builder
	for _, p := range s.h.View().Procs() {
		fmt.Fprintf(&b, "%d\t%d\t%s\t%s\t%s\n",
			p.ID, p.WinID, p.Runtime.Round(time.Millisecond), p.State, p.Name)
	}
	return b.String()
}

// window fetches a live window by id.
func (s *Service) window(id int) (*core.Window, error) {
	w := s.h.View().Window(id)
	if w == nil {
		return nil, fmt.Errorf("helpfs: no window %d", id)
	}
	return w, nil
}

// ---- devices ----------------------------------------------------------------

// readDevice adapts a content function to a read-only device whose
// contents are computed once per open. The stats/trace/histo files
// use it uninstrumented (k nil): reading the meter must not move it.
type readDevice struct {
	content func() string
	k       *kindObs
}

func (d readDevice) OpenDevice(mode int) (vfs.DeviceFile, error) {
	return &stringHandle{content: d.content(), k: d.k, t0: d.k.open()}, nil
}

type stringHandle struct {
	content string
	k       *kindObs
	t0      time.Time
}

func (h *stringHandle) ReadAt(p []byte, off int64) (int, error) {
	h.k.read()
	if off >= int64(len(h.content)) {
		return 0, io.EOF
	}
	n := copy(p, h.content[off:])
	if int(off)+n == len(h.content) {
		return n, io.EOF
	}
	return n, nil
}

func (h *stringHandle) WriteAt(p []byte, off int64) (int, error) {
	return 0, fmt.Errorf("helpfs: read-only file")
}

func (h *stringHandle) Close() error {
	h.k.close(h.t0)
	return nil
}

// bufDevice serves a subwindow's buffer. Reads snapshot the contents at
// open; a plain write replaces the buffer (the paper's body semantics),
// while appendOnly handles bodyapp: "standard output ... is appended to
// the new window by writing to /mnt/help/$x/bodyapp".
type bufDevice struct {
	s          *Service
	id         int
	sub        int
	appendOnly bool
	k          *kindObs
}

// Gen reports the backing buffer's edit generation, offset by one so a
// pristine buffer (text.Buffer.Gen 0) is still distinguishable from
// vfs's "no generation" zero. It is called under the actor lock, like
// every device operation, so the gen and the contents a concurrent read
// observes are coherent. This is what lets srvnet clients cache body
// and tag reads: an unchanged generation proves unchanged contents.
func (d *bufDevice) Gen() uint64 {
	w := d.s.h.View().Window(d.id)
	if w == nil {
		return 0
	}
	return w.Buffer(d.sub).Gen() + 1
}

func (d *bufDevice) OpenDevice(mode int) (vfs.DeviceFile, error) {
	w, err := d.s.window(d.id)
	if err != nil {
		return nil, err
	}
	h := &bufHandle{d: d, w: w, k: d.k, t0: d.k.open()}
	rw := mode &^ (vfs.OTRUNC | vfs.OAPPEND)
	if rw != vfs.OREAD {
		h.writable = true
	}
	// A write-only open never reads, so skip the snapshot: appenders
	// (bodyapp, the path every tool's output takes) must not pay a copy
	// of the whole buffer per write.
	if rw != vfs.OWRITE {
		h.readable = true
		if b := w.Buffer(d.sub); b.Paged() {
			// A paged body may be gigabytes mostly on disk; String()
			// here would defeat the point of paging. Serve reads
			// straight from the piece table instead. This trades the
			// snapshot guarantee for bounded memory: reads of a paged
			// body observe the contents as of each ReadAt (the reader
			// re-seeks when the buffer's generation moves), which is
			// the same coherence a remote srvnet reader already gets
			// across its separate reads.
			h.reader = text.NewByteReader(b)
		} else {
			h.snapshot = w.Buffer(d.sub).String()
		}
	}
	return h, nil
}

type bufHandle struct {
	d        *bufDevice
	w        *core.Window
	snapshot string
	// reader replaces snapshot for paged bodies; see OpenDevice.
	reader   *text.ByteReader
	readable bool
	writable bool
	wrote    bool
	pending  []byte
	k        *kindObs
	t0       time.Time
}

func (h *bufHandle) ReadAt(p []byte, off int64) (int, error) {
	if !h.readable {
		return 0, fmt.Errorf("helpfs: not opened for reading")
	}
	h.k.read()
	if h.reader != nil {
		return h.reader.ReadAt(p, off)
	}
	if off >= int64(len(h.snapshot)) {
		return 0, io.EOF
	}
	n := copy(p, h.snapshot[off:])
	if int(off)+n == len(h.snapshot) {
		return n, io.EOF
	}
	return n, nil
}

func (h *bufHandle) WriteAt(p []byte, off int64) (int, error) {
	if !h.writable {
		return 0, fmt.Errorf("helpfs: not opened for writing")
	}
	h.k.write()
	h.wrote = true
	h.pending = append(h.pending, p...)
	return len(p), nil
}

// Close applies buffered writes: bodyapp appends, tag/body replace.
func (h *bufHandle) Close() error {
	defer h.k.close(h.t0)
	if !h.wrote {
		return nil
	}
	buf := h.w.Buffer(h.d.sub)
	// Admission check before the splice: a remote writer filling bodies
	// is bounded by the same memory budgets as Open/Get, so one session
	// streaming huge payloads through /mnt/help cannot starve neighbors.
	add := len(h.pending)
	if !h.d.appendOnly {
		add -= buf.Len()
	}
	if err := h.d.s.h.View().CheckMem(add); err != nil {
		return err
	}
	if h.d.appendOnly {
		buf.Insert(buf.Len(), string(h.pending))
	} else {
		buf.SetString(string(h.pending))
	}
	buf.Commit()
	// A replacement may have shrunk the buffer under an existing
	// selection; re-clamping keeps every later edit in range.
	sel := h.w.Sel[h.d.sub]
	h.w.SetSelection(h.d.sub, sel.Q0, sel.Q1)
	// Tags are never rewritten implicitly here: programs own their
	// windows' tags and use the "name"/"tag"/"clean"/"dirty" control
	// messages when they want the standard decorations.
	return nil
}

// newCtlDevice creates a window per open: "To create a new window, a
// process just opens /mnt/help/new/ctl, which places the new window
// automatically on the screen near the current selected text, and may then
// read from that file the name of the window created."
type newCtlDevice struct {
	s *Service
}

func (d *newCtlDevice) OpenDevice(mode int) (vfs.DeviceFile, error) {
	k := d.s.kinds["ctl"]
	t0 := k.open()
	w := d.s.h.View().NewWindow()
	return &newCtlHandle{s: d.s, id: w.ID, name: strconv.Itoa(w.ID) + "\n", k: k, t0: t0}, nil
}

type newCtlHandle struct {
	s    *Service
	id   int
	name string
	ctl  ctlHandle
	k    *kindObs
	t0   time.Time
}

func (h *newCtlHandle) ReadAt(p []byte, off int64) (int, error) {
	h.k.read()
	if off >= int64(len(h.name)) {
		return 0, io.EOF
	}
	n := copy(p, h.name[off:])
	return n, io.EOF
}

// WriteAt forwards control messages, so a script can create and configure
// a window through the single open file.
func (h *newCtlHandle) WriteAt(p []byte, off int64) (int, error) {
	h.k.write()
	h.ctl = ctlHandle{s: h.s, id: h.id}
	return h.ctl.WriteAt(p, off)
}

func (h *newCtlHandle) Close() error {
	h.k.close(h.t0)
	return nil
}

// rootCtlDevice accepts service-wide control messages:
//
//	open name[:addr]   open a file or directory in a window, positioned
//	                   at the optional address — the hook that lets a
//	                   tool "close the loop so the Open operation also
//	                   happens automatically" (the paper's planned change
//	                   to the decl browser).
type rootCtlDevice struct {
	s *Service
}

func (d *rootCtlDevice) OpenDevice(mode int) (vfs.DeviceFile, error) {
	k := d.s.kinds["ctl"]
	return &rootCtlHandle{s: d.s, k: k, t0: k.open()}, nil
}

type rootCtlHandle struct {
	s  *Service
	k  *kindObs
	t0 time.Time
}

func (h *rootCtlHandle) ReadAt(p []byte, off int64) (int, error) {
	return 0, io.EOF
}

func (h *rootCtlHandle) WriteAt(p []byte, off int64) (int, error) {
	h.k.write()
	for _, line := range strings.Split(string(p), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		verb, arg := line, ""
		if i := strings.IndexAny(line, " \t"); i >= 0 {
			verb, arg = line[:i], strings.TrimSpace(line[i+1:])
		}
		switch verb {
		case "open":
			name, addr := core.SplitAddr(arg)
			if _, err := h.s.h.View().OpenFile(name, addr); err != nil {
				return 0, err
			}
		default:
			return 0, fmt.Errorf("helpfs: unknown root ctl message %q", verb)
		}
	}
	return len(p), nil
}

func (h *rootCtlHandle) Close() error {
	h.k.close(h.t0)
	return nil
}

// ctlDevice accepts control messages for one window.
type ctlDevice struct {
	s  *Service
	id int
	k  *kindObs
}

func (d *ctlDevice) OpenDevice(mode int) (vfs.DeviceFile, error) {
	return &ctlHandle{s: d.s, id: d.id, k: d.k, t0: d.k.open()}, nil
}

type ctlHandle struct {
	s  *Service
	id int
	k  *kindObs
	t0 time.Time
}

func (h *ctlHandle) ReadAt(p []byte, off int64) (int, error) {
	h.k.read()
	// Reading ctl reports the window id, handy for scripts.
	msg := strconv.Itoa(h.id) + "\n"
	if off >= int64(len(msg)) {
		return 0, io.EOF
	}
	n := copy(p, msg[off:])
	return n, io.EOF
}

func (h *ctlHandle) WriteAt(p []byte, off int64) (int, error) {
	h.k.write()
	w, err := h.s.window(h.id)
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(p), "\n") {
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		if err := h.s.ctlMessage(w, line); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

func (h *ctlHandle) Close() error {
	h.k.close(h.t0)
	return nil
}

// ctlMessage interprets one control line.
func (s *Service) ctlMessage(w *core.Window, line string) error {
	verb := line
	arg := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		verb, arg = line[:i], strings.TrimSpace(line[i+1:])
	}
	switch verb {
	case "name":
		w.SetNameTag(arg)
	case "tag":
		w.Tag.SetString(arg)
		w.Tag.SetClean()
	case "clean":
		w.Body.SetClean()
		w.RefreshTag()
	case "dirty":
		w.Body.SetDirty()
		w.RefreshTag()
	case "show":
		return w.ShowAddr(arg)
	case "select":
		var q0, q1 int
		if _, err := fmt.Sscanf(arg, "%d %d", &q0, &q1); err != nil {
			return fmt.Errorf("helpfs: bad select %q", arg)
		}
		w.SetSelection(core.SubBody, q0, q1)
	case "delete":
		s.h.View().CloseWindow(w)
	default:
		return fmt.Errorf("helpfs: unknown ctl message %q", verb)
	}
	return nil
}
