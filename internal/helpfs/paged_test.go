package helpfs

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/vfs"
)

// TestPagedBodyRead drives a gigabyte-class code path at test scale:
// a body big enough to open paged is read back through /mnt/help/N/body
// without ever being materialized as one string.
func TestPagedBodyRead(t *testing.T) {
	h, fs, _ := attach(t)
	h.SetLimits(core.Limits{MaxResident: 32 << 10})
	var b strings.Builder
	for i := 0; b.Len() < 256<<10; i++ {
		fmt.Fprintf(&b, "paged line %d\n", i)
	}
	body := b.String()
	fs.WriteFile("/tmp/big.log", []byte(body))
	w, err := h.OpenFile("/tmp/big.log", "")
	if err != nil {
		t.Fatal(err)
	}
	if !w.Body.Paged() {
		t.Fatal("test body did not open paged")
	}

	data, err := fs.ReadFile("/mnt/help/1/body")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != body {
		t.Fatalf("device read mismatch: %d bytes, want %d", len(data), len(body))
	}
	// Reading the whole body through the device must not have made it
	// resident: the piece table pages in and evicts as the reader walks.
	if mr := w.Body.MemRunes(); mr >= len(body) {
		t.Errorf("MemRunes = %d after full device read: body fully resident", mr)
	}

	// Paged reads are live, not open-time snapshots: a second read of the
	// same path observes edits made in between.
	f, err := fs.Open("/mnt/help/1/body", vfs.OREAD)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	head := make([]byte, 6)
	if _, err := f.Read(head); err != nil {
		t.Fatal(err)
	}
	if string(head) != "paged " {
		t.Fatalf("head = %q", head)
	}
	w.Body.Insert(0, "EDIT! ")
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(head); err != nil {
		t.Fatal(err)
	}
	if string(head) != "EDIT! " {
		t.Errorf("read after edit = %q, want %q", head, "EDIT! ")
	}
}
