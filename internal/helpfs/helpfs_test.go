package helpfs

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/shell"
	"repro/internal/userland"
	"repro/internal/vfs"
)

// attach builds a help instance with the file service mounted at
// /mnt/help and the userland installed.
func attach(t *testing.T) (*core.Help, *vfs.FS, *Service) {
	t.Helper()
	fs := vfs.New()
	fs.MkdirAll("/bin")
	fs.MkdirAll("/tmp")
	fs.WriteFile("/tmp/notes", []byte("some file contents\n"))
	sh := shell.New(fs)
	userland.Install(sh)
	h := core.New(fs, sh, 80, 24)
	svc, err := Attach(h, fs, "/mnt/help")
	if err != nil {
		t.Fatal(err)
	}
	return h, fs, svc
}

func TestNewCtlCreatesWindow(t *testing.T) {
	h, fs, _ := attach(t)
	f, err := fs.Open("/mnt/help/new/ctl", vfs.OREAD)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, _ := f.Read(buf)
	f.Close()
	id := strings.TrimSpace(string(buf[:n]))
	if id != "1" {
		t.Errorf("new window id = %q", id)
	}
	if len(h.Windows()) != 1 {
		t.Errorf("windows = %d", len(h.Windows()))
	}
}

func TestBodyReadWrite(t *testing.T) {
	h, fs, _ := attach(t)
	w := h.NewWindow()
	w.Body.SetString("hello from help")
	data, err := fs.ReadFile("/mnt/help/1/body")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello from help" {
		t.Errorf("body read = %q", data)
	}
	// Writing replaces.
	if err := fs.WriteFile("/mnt/help/1/body", []byte("replaced")); err != nil {
		t.Fatal(err)
	}
	if w.Body.String() != "replaced" {
		t.Errorf("body after write = %q", w.Body.String())
	}
}

func TestBodyappAppends(t *testing.T) {
	h, fs, _ := attach(t)
	w := h.NewWindow()
	w.Body.SetString("start\n")
	f, err := fs.Open("/mnt/help/1/bodyapp", vfs.OWRITE)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("appended 1\n"))
	f.Write([]byte("appended 2\n"))
	f.Close()
	if w.Body.String() != "start\nappended 1\nappended 2\n" {
		t.Errorf("body = %q", w.Body.String())
	}
}

func TestTagReadWrite(t *testing.T) {
	h, fs, _ := attach(t)
	w := h.NewWindow()
	w.Tag.SetString("/some/file\tClose!")
	data, _ := fs.ReadFile("/mnt/help/1/tag")
	if string(data) != "/some/file\tClose!" {
		t.Errorf("tag = %q", data)
	}
	fs.WriteFile("/mnt/help/1/tag", []byte("/other\tClose!"))
	if w.Tag.String() != "/other\tClose!" {
		t.Errorf("tag after write = %q", w.Tag.String())
	}
}

func TestIndexFormat(t *testing.T) {
	h, fs, _ := attach(t)
	a := h.NewWindow()
	a.Tag.SetString("/a/file\tClose!")
	b := h.NewWindow()
	b.Tag.SetString("Errors\tClose!")
	data, err := fs.ReadFile("/mnt/help/index")
	if err != nil {
		t.Fatal(err)
	}
	want := "1\t/a/file\tClose!\n2\tErrors\tClose!\n"
	if string(data) != want {
		t.Errorf("index = %q, want %q", data, want)
	}
}

func TestCtlMessages(t *testing.T) {
	h, fs, _ := attach(t)
	w := h.NewWindow()
	w.Body.SetString("one\ntwo\nthree\n")

	write := func(msg string) error {
		return fs.WriteFile("/mnt/help/1/ctl", []byte(msg))
	}
	if err := write("name /tmp/notes\n"); err != nil {
		t.Fatal(err)
	}
	if w.FileName() != "/tmp/notes" {
		t.Errorf("name = %q", w.FileName())
	}
	if err := write("show 2\n"); err != nil {
		t.Fatal(err)
	}
	if got := w.SelectedText(core.SubBody); got != "two" {
		t.Errorf("after show: selected %q", got)
	}
	if err := write("select 0 3\n"); err != nil {
		t.Fatal(err)
	}
	if got := w.SelectedText(core.SubBody); got != "one" {
		t.Errorf("after select: %q", got)
	}
	if err := write("dirty\n"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(w.Tag.String(), "Put!") {
		t.Errorf("dirty tag = %q", w.Tag.String())
	}
	if err := write("clean\n"); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(w.Tag.String(), "Put!") {
		t.Errorf("clean tag = %q", w.Tag.String())
	}
	if err := write("tag raw tag text\n"); err != nil {
		t.Fatal(err)
	}
	if w.Tag.String() != "raw tag text" {
		t.Errorf("tag = %q", w.Tag.String())
	}
	if err := write("bogus\n"); err == nil {
		t.Error("unknown ctl message should fail")
	}
	if err := write("delete\n"); err != nil {
		t.Fatal(err)
	}
	if len(h.Windows()) != 0 {
		t.Error("delete did not close the window")
	}
}

func TestWindowFilesRemovedOnClose(t *testing.T) {
	h, fs, _ := attach(t)
	w := h.NewWindow()
	if !fs.Exists("/mnt/help/1/body") {
		t.Fatal("window files missing")
	}
	h.CloseWindow(w)
	if fs.Exists("/mnt/help/1/body") {
		t.Error("window files survive close")
	}
	if _, err := fs.ReadFile("/mnt/help/1/body"); err == nil {
		t.Error("stale body file readable")
	}
}

func TestShellScriptDrivesUI(t *testing.T) {
	// The paper's core demonstration: a shell script, with no UI code,
	// creates a window, names it, and fills it through the file system.
	h, _, _ := attach(t)
	sh := h.Shell
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	script := `
x=` + "`" + `{cat /mnt/help/new/ctl}
echo name /results > /mnt/help/$x/ctl
{
echo result line 1
echo result line 2
} > /mnt/help/$x/bodyapp
`
	if status := sh.Run(ctx, script); status != 0 {
		t.Fatalf("script failed: %s", out.String())
	}
	if len(h.Windows()) != 1 {
		t.Fatalf("windows = %d", len(h.Windows()))
	}
	w := h.Windows()[0]
	if w.FileName() != "/results" {
		t.Errorf("name = %q", w.FileName())
	}
	if w.Body.String() != "result line 1\nresult line 2\n" {
		t.Errorf("body = %q", w.Body.String())
	}
}

func TestCpBodyToFile(t *testing.T) {
	// "to copy the text in the body of window number 7 to a file, one may
	// execute: cp /mnt/help/7/body file"
	h, fs, _ := attach(t)
	w := h.NewWindow()
	w.Body.SetString("window text\n")
	sh := h.Shell
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	if status := sh.Run(ctx, "cp /mnt/help/1/body /tmp/saved"); status != 0 {
		t.Fatalf("cp failed: %s", out.String())
	}
	data, _ := fs.ReadFile("/tmp/saved")
	if string(data) != "window text\n" {
		t.Errorf("saved = %q", data)
	}
}

func TestGrepBody(t *testing.T) {
	// "To search for a text pattern: grep pattern /mnt/help/7/body"
	h, _, _ := attach(t)
	w := h.NewWindow()
	w.Body.SetString("alpha\nneedle here\nomega\n")
	sh := h.Shell
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	if status := sh.Run(ctx, "grep needle /mnt/help/1/body"); status != 0 {
		t.Fatalf("grep failed: %s", out.String())
	}
	if out.String() != "needle here\n" {
		t.Errorf("grep out = %q", out.String())
	}
}

func TestReadOnlyIndex(t *testing.T) {
	_, fs, _ := attach(t)
	if err := fs.WriteFile("/mnt/help/index", []byte("x")); err == nil {
		t.Error("index should be read-only")
	}
}

func TestMultipleServicesIndependentRoots(t *testing.T) {
	h, fs, _ := attach(t)
	// Attach a second service at another root; both see the same windows.
	if _, err := Attach(h, fs, "/n/help"); err != nil {
		t.Fatal(err)
	}
	w := h.NewWindow()
	w.Body.SetString("shared")
	d1, _ := fs.ReadFile("/mnt/help/1/body")
	d2, _ := fs.ReadFile("/n/help/1/body")
	if string(d1) != "shared" || string(d2) != "shared" {
		t.Errorf("roots disagree: %q vs %q", d1, d2)
	}
}

func TestCtlReadReportsID(t *testing.T) {
	h, fs, _ := attach(t)
	h.NewWindow()
	data, err := fs.ReadFile("/mnt/help/1/ctl")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(data)) != "1" {
		t.Errorf("ctl read = %q", data)
	}
}

func TestBodyWriteClampsSelection(t *testing.T) {
	h, fs, _ := attach(t)
	w := h.NewWindow()
	w.Body.SetString(strings.Repeat("long content\n", 20))
	w.SetSelection(core.SubBody, 100, 120)
	// A tool replaces the body with something much shorter.
	if err := fs.WriteFile("/mnt/help/1/body", []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	sel := w.Sel[core.SubBody]
	if sel.Q1 > w.Body.Len() {
		t.Errorf("stale selection %+v after body shrank to %d", sel, w.Body.Len())
	}
}

func TestServiceRoot(t *testing.T) {
	_, _, svc := attach(t)
	if svc.Root() != "/mnt/help" {
		t.Errorf("Root = %q", svc.Root())
	}
}

func TestNewCtlWriteForwardsMessages(t *testing.T) {
	h, fs, _ := attach(t)
	// A single open of new/ctl can both name the window and read its id.
	f, err := fs.Open("/mnt/help/new/ctl", vfs.ORDWR)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("name /via/newctl\n")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if h.WindowByName("/via/newctl") == nil {
		t.Error("write through new/ctl did not configure the window")
	}
}

func TestBodyDeviceReadOnlyWrite(t *testing.T) {
	h, fs, _ := attach(t)
	h.NewWindow()
	f, err := fs.Open("/mnt/help/1/body", vfs.OREAD)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("x")); err == nil {
		t.Error("write on read-only body handle should fail")
	}
}

func TestCtlSelectBadArgs(t *testing.T) {
	h, fs, _ := attach(t)
	h.NewWindow()
	if err := fs.WriteFile("/mnt/help/1/ctl", []byte("select notanumber\n")); err == nil {
		t.Error("bad select should fail")
	}
	if err := fs.WriteFile("/mnt/help/1/ctl", []byte("show /missing-pattern/\n")); err == nil {
		t.Error("show with missing pattern should fail")
	}
}

func TestIndexLargeRead(t *testing.T) {
	h, fs, _ := attach(t)
	for i := 0; i < 50; i++ {
		w := h.NewWindow()
		w.Tag.SetString(strings.Repeat("x", 100))
	}
	data, err := fs.ReadFile("/mnt/help/index")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(string(data), "\n") != 50 {
		t.Errorf("index lines = %d", strings.Count(string(data), "\n"))
	}
}

// TestWindowChurn creates and deletes many windows through the file
// interface; ids never clash and the index always matches the live set.
func TestWindowChurn(t *testing.T) {
	h, fs, _ := attach(t)
	seen := map[string]bool{}
	var live []string
	for i := 0; i < 200; i++ {
		f, err := fs.Open("/mnt/help/new/ctl", vfs.OREAD)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 16)
		n, _ := f.Read(buf)
		f.Close()
		id := strings.TrimSpace(string(buf[:n]))
		if seen[id] {
			t.Fatalf("window id %s reused", id)
		}
		seen[id] = true
		live = append(live, id)
		// Delete every other window as we go.
		if i%2 == 1 {
			victim := live[0]
			live = live[1:]
			if err := fs.WriteFile("/mnt/help/"+victim+"/ctl", []byte("delete\n")); err != nil {
				t.Fatal(err)
			}
		}
	}
	idx, err := fs.ReadFile("/mnt/help/index")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(idx), "\n")
	if lines != len(live) || lines != len(h.Windows()) {
		t.Errorf("index=%d live=%d windows=%d", lines, len(live), len(h.Windows()))
	}
	// Every live window's files are reachable; every deleted one's gone.
	for _, id := range live {
		if !fs.Exists("/mnt/help/" + id + "/body") {
			t.Errorf("live window %s missing files", id)
		}
	}
}

func TestRootCtlOpen(t *testing.T) {
	h, fs, _ := attach(t)
	fs.WriteFile("/tmp/afile", []byte("one\ntwo\nthree\n"))
	if err := fs.WriteFile("/mnt/help/ctl", []byte("open /tmp/afile:2\n")); err != nil {
		t.Fatal(err)
	}
	w := h.WindowByName("/tmp/afile")
	if w == nil {
		t.Fatal("root ctl open did not create a window")
	}
	if got := w.SelectedText(core.SubBody); got != "two" {
		t.Errorf("selected %q", got)
	}
	if err := fs.WriteFile("/mnt/help/ctl", []byte("bogus msg\n")); err == nil {
		t.Error("unknown root ctl message should fail")
	}
	if err := fs.WriteFile("/mnt/help/ctl", []byte("open /ghost\n")); err == nil {
		t.Error("open of missing file should fail")
	}
}

// Window buffers carry edit generations through the namespace: a body
// edit must move the generation that Stat reports, since srvnet's
// client cache revalidates against it.
func TestBodyGenMovesOnEdit(t *testing.T) {
	_, fs, _ := attach(t)
	f, err := fs.Open("/mnt/help/new/ctl", vfs.OREAD)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, _ := f.Read(buf)
	f.Close()
	id := strings.TrimSpace(string(buf[:n]))
	body := "/mnt/help/" + id + "/body"

	info, err := fs.Stat(body)
	if err != nil {
		t.Fatal(err)
	}
	// Even a pristine buffer has a nonzero generation (offset by one),
	// so "no generation" (0) stays distinguishable.
	if info.Gen == 0 {
		t.Fatal("body has no generation")
	}
	g1 := info.Gen
	if err := fs.WriteFile(body, []byte("edited")); err != nil {
		t.Fatal(err)
	}
	info, err = fs.Stat(body)
	if err != nil {
		t.Fatal(err)
	}
	if info.Gen == g1 {
		t.Fatalf("body edit did not move the generation (still %d)", g1)
	}
}
