// Package obs is the self-observation substrate: lock-cheap counters,
// fixed-bucket latency histograms, and a bounded concurrent span ring,
// collected in a Registry that renders itself as flat text so helpfs
// can serve it as files under /mnt/help (stats, trace, histo/<name>).
//
// Everything is nil-safe: a nil *Counter, *Histogram, *Registry, or
// *ActiveSpan is a no-op, so instrumented code never branches on
// "is observability enabled" — it just calls through.
//
// The hot-path discipline mirrors the render path's: counters are a
// single atomic add, histograms are three atomic adds plus a CAS for
// the max, and spans touch one ring slot with a newest-wins CAS so
// concurrent writers (srvnet runs off the event loop) never block and
// never lose a newer span to an older delayed one.
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically adjusted atomic value. The zero value is
// ready to use; a nil Counter ignores writes and reads as zero.
type Counter struct {
	v atomic.Int64
}

func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

func (c *Counter) Inc() { c.Add(1) }

// Store overwrites the value; used to mirror event-loop-owned plain
// ints (event.Machine presses/travel) into something readable from
// other goroutines.
func (c *Counter) Store(n int64) {
	if c == nil {
		return
	}
	c.v.Store(n)
}

func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// histBuckets is the number of power-of-two latency buckets: bucket i
// holds observations with ceil(d) <= 1<<i microseconds, i = 0..17,
// spanning 1µs to ~131ms; slower observations land in the overflow
// bucket. Eighteen buckets cover everything from a vfs lookup to a
// stalled srvnet RPC without per-histogram configuration.
const histBuckets = 18

// Histogram is a fixed-bucket latency histogram. The zero value is
// ready to use; a nil Histogram ignores observations.
type Histogram struct {
	buckets [histBuckets + 1]atomic.Int64
	count   atomic.Int64
	sumNS   atomic.Int64
	maxNS   atomic.Int64
}

func bucketIndex(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	if us <= 1 {
		return 0
	}
	i := bits.Len64(us - 1) // smallest i with 1<<i >= us
	if i >= histBuckets {
		return histBuckets
	}
	return i
}

func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(d))
	for {
		max := h.maxNS.Load()
		if int64(d) <= max || h.maxNS.CompareAndSwap(max, int64(d)) {
			return
		}
	}
}

func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

func (h *Histogram) SumMicros() int64 {
	if h == nil {
		return 0
	}
	return h.sumNS.Load() / 1e3
}

func (h *Histogram) MaxMicros() int64 {
	if h == nil {
		return 0
	}
	return h.maxNS.Load() / 1e3
}

// Text renders the histogram as flat `key value` lines: count, sum_us,
// max_us, then one cumulative-bound `le_us <bound> <count>` line per
// occupied bucket (le_us inf for the overflow bucket). This is the
// byte content of /mnt/help/histo/<name>.
func (h *Histogram) Text() string {
	var b strings.Builder
	if h == nil {
		return ""
	}
	fmt.Fprintf(&b, "count %d\n", h.count.Load())
	fmt.Fprintf(&b, "sum_us %d\n", h.sumNS.Load()/1e3)
	fmt.Fprintf(&b, "max_us %d\n", h.maxNS.Load()/1e3)
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			fmt.Fprintf(&b, "le_us %d %d\n", uint64(1)<<i, n)
		}
	}
	if n := h.buckets[histBuckets].Load(); n > 0 {
		fmt.Fprintf(&b, "le_us inf %d\n", n)
	}
	return b.String()
}

// Span is one completed trace span (or an instantaneous event, with
// Dur zero). Spans are values once published; readers never see a span
// mid-mutation.
type Span struct {
	Seq   uint64
	Name  string
	Attrs string
	Start time.Time
	Dur   time.Duration
}

// Line renders a span as one trace line: seq, name, duration in
// microseconds, then attrs. The format is stable for scripts.
func (sp Span) Line() string {
	if sp.Attrs == "" {
		return fmt.Sprintf("%d %s %dus", sp.Seq, sp.Name, sp.Dur.Microseconds())
	}
	return fmt.Sprintf("%d %s %dus %s", sp.Seq, sp.Name, sp.Dur.Microseconds(), sp.Attrs)
}

// spanRing is a bounded lock-free ring of the last-N published spans.
// Each slot holds an immutable *Span; writers claim a sequence number
// with one atomic add and install with a CAS that only ever replaces
// an older span, so a delayed writer can't clobber a newer one that
// lapped it.
type spanRing struct {
	slots []atomic.Pointer[Span]
	seq   atomic.Uint64
}

func (r *spanRing) put(sp *Span) {
	sp.Seq = r.seq.Add(1)
	slot := &r.slots[(sp.Seq-1)%uint64(len(r.slots))]
	for {
		old := slot.Load()
		if old != nil && old.Seq > sp.Seq {
			return // a newer span already lapped this slot
		}
		if slot.CompareAndSwap(old, sp) {
			return
		}
	}
}

func (r *spanRing) spans() []Span {
	out := make([]Span, 0, len(r.slots))
	for i := range r.slots {
		if sp := r.slots[i].Load(); sp != nil {
			out = append(out, *sp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Sink receives every published span, for streaming trace output
// beyond the bounded ring (a file, a network feed, a test recorder).
type Sink interface {
	Emit(Span)
}

// FuncSink adapts a function to the Sink interface.
type FuncSink func(Span)

func (f FuncSink) Emit(sp Span) { f(sp) }

// DefaultSpanCap is the trace ring size used by New: enough to hold a
// whole interactive burst (a gesture storm plus the execs and faults
// it triggers) without growing unbounded.
const DefaultSpanCap = 256

// Registry owns a process's named counters, histograms, gauges, and
// the span ring. All methods are safe for concurrent use; name lookup
// takes a mutex but instrumented code resolves names once and then
// touches only atomics.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	histos   map[string]*Histogram
	gauges   map[string]func() int64
	ring     spanRing
	sink     atomic.Pointer[Sink]
}

// New returns a Registry with the default trace ring capacity.
func New() *Registry { return NewSized(DefaultSpanCap) }

// NewSized returns a Registry whose trace ring holds spanCap spans.
func NewSized(spanCap int) *Registry {
	if spanCap < 1 {
		spanCap = 1
	}
	return &Registry{
		counters: map[string]*Counter{},
		histos:   map[string]*Histogram{},
		gauges:   map[string]func() int64{},
		ring:     spanRing{slots: make([]atomic.Pointer[Span], spanCap)},
	}
}

// Counter returns the named counter, creating it on first use. On a
// nil Registry it returns nil, which is itself a valid no-op Counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histos[name]
	if h == nil {
		h = &Histogram{}
		r.histos[name] = h
	}
	return h
}

// Gauge registers a named read-on-demand value; fn must be safe to
// call from any goroutine.
func (r *Registry) Gauge(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = fn
}

// HistogramNames returns the sorted names of all histograms created so
// far; helpfs uses it to materialize /mnt/help/histo/<name> files.
func (r *Registry) HistogramNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.histos))
	for name := range r.histos {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SetSink installs a streaming receiver for published spans (nil to
// remove). The ring keeps working either way.
func (r *Registry) SetSink(s Sink) {
	if r == nil {
		return
	}
	if s == nil {
		r.sink.Store(nil)
		return
	}
	r.sink.Store(&s)
}

func (r *Registry) publish(sp *Span) {
	r.ring.put(sp)
	if s := r.sink.Load(); s != nil {
		(*s).Emit(*sp)
	}
}

// ActiveSpan is a span in progress; End publishes it. A nil ActiveSpan
// (from a nil Registry) is a no-op.
type ActiveSpan struct {
	r     *Registry
	name  string
	attrs string
	start time.Time
}

// StartSpan begins a span; the caller must End it to publish.
func (r *Registry) StartSpan(name, attrs string) *ActiveSpan {
	if r == nil {
		return nil
	}
	return &ActiveSpan{r: r, name: name, attrs: attrs, start: time.Now()}
}

// End publishes the span and returns its duration (zero on a nil
// span), so callers can feed a latency histogram without reading the
// clock twice.
func (a *ActiveSpan) End() time.Duration {
	if a == nil {
		return 0
	}
	d := time.Since(a.start)
	a.r.publish(&Span{Name: a.name, Attrs: a.attrs, Start: a.start, Dur: d})
	return d
}

// Event publishes an instantaneous zero-duration span, used for
// discrete occurrences like fault reports and degradation transitions.
func (r *Registry) Event(name, attrs string) {
	if r == nil {
		return
	}
	r.publish(&Span{Name: name, Attrs: attrs, Start: time.Now()})
}

// Spans returns the ring contents in ascending sequence order.
func (r *Registry) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.ring.spans()
}

// Seq returns the seq of the most recently published span (0 if none).
// Trace and stats snapshots are stamped with it so a scraper comparing
// consecutive reads can tell whether the ring wrapped in between —
// i.e. whether it missed a window of spans.
func (r *Registry) Seq() uint64 {
	if r == nil {
		return 0
	}
	return r.ring.seq.Load()
}

// TraceText renders the ring as one span per line, oldest first: the
// byte content of /mnt/help/trace. The first line is a comment stamp,
// "# seq <n> cap <ring capacity>": a scraper whose previous read ended
// at seq m has missed spans iff n - m > the number of span lines that
// follow (the ring wrapped past it).
func (r *Registry) TraceText() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# seq %d cap %d\n", r.Seq(), len(r.ring.slots))
	for _, sp := range r.Spans() {
		b.WriteString(sp.Line())
		b.WriteByte('\n')
	}
	return b.String()
}

// StatsMap returns every counter, gauge, and histogram summary as a
// flat name→value map. Histograms contribute <name>.count, .sum_us,
// and .max_us so a flat reader still sees latency totals.
func (r *Registry) StatsMap() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	histos := make(map[string]*Histogram, len(r.histos))
	for name, h := range r.histos {
		histos[name] = h
	}
	gauges := make(map[string]func() int64, len(r.gauges))
	for name, fn := range r.gauges {
		gauges[name] = fn
	}
	r.mu.Unlock()

	out := make(map[string]int64, len(counters)+len(gauges)+3*len(histos)+1)
	// The stamp scrapers diff to detect missed trace windows; see Seq.
	out["obs.seq"] = int64(r.Seq())
	for name, c := range counters {
		out[name] = c.Load()
	}
	for name, fn := range gauges {
		out[name] = fn()
	}
	for name, h := range histos {
		out[name+".count"] = h.Count()
		out[name+".sum_us"] = h.SumMicros()
		out[name+".max_us"] = h.MaxMicros()
	}
	return out
}

// StatsText renders StatsMap as sorted `key value` lines: the byte
// content of /mnt/help/stats.
func (r *Registry) StatsText() string {
	m := r.StatsMap()
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%s %d\n", name, m[name])
	}
	return b.String()
}
