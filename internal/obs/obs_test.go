package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterNilSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	c.Store(9)
	if got := c.Load(); got != 0 {
		t.Fatalf("nil counter Load = %d, want 0", got)
	}
	var r *Registry
	if r.Counter("x") != nil {
		t.Fatal("nil registry should hand out nil counters")
	}
	r.Histogram("x").Observe(time.Millisecond)
	r.Event("e", "")
	r.StartSpan("s", "").End()
	if r.StatsText() != "" || r.TraceText() != "" {
		t.Fatal("nil registry should render empty")
	}
}

func TestCounter(t *testing.T) {
	r := New()
	c := r.Counter("core.keystrokes")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("Load = %d, want 5", got)
	}
	if r.Counter("core.keystrokes") != c {
		t.Fatal("same name must return the same counter")
	}
	c.Store(11)
	if got := c.Load(); got != 11 {
		t.Fatalf("after Store, Load = %d, want 11", got)
	}
}

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 0},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{5 * time.Microsecond, 3},
		{128 * time.Microsecond, 7},
		{129 * time.Microsecond, 8},
		{131072 * time.Microsecond, 17},
		{131073 * time.Microsecond, histBuckets},
		{time.Hour, histBuckets},
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestHistogram(t *testing.T) {
	r := New()
	h := r.Histogram("render")
	h.Observe(3 * time.Microsecond)
	h.Observe(3 * time.Microsecond)
	h.Observe(100 * time.Microsecond)
	h.Observe(time.Second) // overflow
	if got := h.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	if got := h.MaxMicros(); got != 1e6 {
		t.Fatalf("MaxMicros = %d, want 1000000", got)
	}
	text := h.Text()
	for _, want := range []string{"count 4\n", "le_us 4 2\n", "le_us 128 1\n", "le_us inf 1\n"} {
		if !strings.Contains(text, want) {
			t.Errorf("histogram text missing %q:\n%s", want, text)
		}
	}
}

func TestStatsText(t *testing.T) {
	r := New()
	r.Counter("b.second").Add(2)
	r.Counter("a.first").Add(1)
	r.Gauge("c.windows", func() int64 { return 7 })
	r.Histogram("exec").Observe(5 * time.Microsecond)
	text := r.StatsText()
	lines := strings.Split(strings.TrimSpace(text), "\n")
	want := []string{
		"a.first 1",
		"b.second 2",
		"c.windows 7",
		"exec.count 1",
		"exec.max_us 5",
		"exec.sum_us 5",
		"obs.seq 0",
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(want), text)
	}
	for i, w := range want {
		if lines[i] != w {
			t.Errorf("line %d = %q, want %q", i, lines[i], w)
		}
	}
}

func TestSpansAndTrace(t *testing.T) {
	r := NewSized(4)
	sp := r.StartSpan("exec", "cmd=date")
	sp.End()
	r.Event("fault", "remote (degraded): connection refused")
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "exec" || spans[0].Attrs != "cmd=date" {
		t.Fatalf("span 0 = %+v", spans[0])
	}
	if spans[0].Seq >= spans[1].Seq {
		t.Fatalf("sequence not ascending: %d then %d", spans[0].Seq, spans[1].Seq)
	}
	trace := r.TraceText()
	if !strings.Contains(trace, "exec") || !strings.Contains(trace, "remote (degraded)") {
		t.Fatalf("trace missing spans:\n%s", trace)
	}
	// Wrap: only the newest 4 survive, still in order.
	for i := 0; i < 10; i++ {
		r.Event("tick", "")
	}
	spans = r.Spans()
	if len(spans) != 4 {
		t.Fatalf("after wrap got %d spans, want 4", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Seq != spans[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs after wrap: %v then %v", spans[i-1].Seq, spans[i].Seq)
		}
	}
	if spans[3].Seq != 12 {
		t.Fatalf("newest seq = %d, want 12", spans[3].Seq)
	}
}

func TestSink(t *testing.T) {
	r := New()
	var mu sync.Mutex
	var got []string
	r.SetSink(FuncSink(func(sp Span) {
		mu.Lock()
		got = append(got, sp.Name)
		mu.Unlock()
	}))
	r.Event("a", "")
	r.StartSpan("b", "").End()
	r.SetSink(nil)
	r.Event("c", "")
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("sink saw %v, want [a b]", got)
	}
}

// TestSpanRingConcurrent hammers a small ring from several writers
// while a reader snapshots mid-wrap, then asserts the ring holds
// exactly the newest spans with unique, ascending sequence numbers —
// no lost update, no stale span surviving a lap. Run under -race.
func TestSpanRingConcurrent(t *testing.T) {
	const (
		ringCap = 64
		writers = 8
		perG    = 500
	)
	r := NewSized(ringCap)
	stop := make(chan struct{})
	var reader sync.WaitGroup
	// Reader: every snapshot, even mid-wrap, must be strictly
	// ascending with unique seqs.
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			spans := r.Spans()
			for i := 1; i < len(spans); i++ {
				if spans[i].Seq <= spans[i-1].Seq {
					t.Errorf("reader saw non-ascending seqs: %d then %d",
						spans[i-1].Seq, spans[i].Seq)
					return
				}
			}
		}
	}()
	var writersWG sync.WaitGroup
	for g := 0; g < writers; g++ {
		writersWG.Add(1)
		go func() {
			defer writersWG.Done()
			for i := 0; i < perG; i++ {
				r.Event("w", "")
			}
		}()
	}
	writersWG.Wait()
	close(stop)
	reader.Wait()

	spans := r.Spans()
	if len(spans) != ringCap {
		t.Fatalf("ring holds %d spans, want %d", len(spans), ringCap)
	}
	const total = writers * perG
	// Every slot must hold one of the newest ringCap seqs: a slot kept
	// by an older lapped writer would show up as a gap here.
	seen := map[uint64]bool{}
	for _, sp := range spans {
		if sp.Seq <= total-ringCap || sp.Seq > total {
			t.Fatalf("stale span survived wrap: seq %d (total %d, cap %d)",
				sp.Seq, total, ringCap)
		}
		if seen[sp.Seq] {
			t.Fatalf("duplicate seq %d", sp.Seq)
		}
		seen[sp.Seq] = true
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Seq != spans[i-1].Seq+1 {
			t.Fatalf("lost update: seq gap %d -> %d", spans[i-1].Seq, spans[i].Seq)
		}
	}
}
