package faultnet

import (
	"bytes"
	"errors"
	"net"
	"os"
	"testing"
	"time"
)

// pipePair returns the two ends of an in-memory connection, with the
// script applied to side a.
func pipePair(s *Script) (net.Conn, net.Conn) {
	a, b := net.Pipe()
	return WrapConn(a, s), b
}

func TestCleanPassThrough(t *testing.T) {
	a, b := pipePair(NewScript())
	go func() {
		a.Write([]byte("hello"))
		a.Close()
	}()
	buf := make([]byte, 16)
	n, err := b.Read(buf)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("read %q err %v", buf[:n], err)
	}
}

func TestDropWrite(t *testing.T) {
	a, b := pipePair(NewScript(Fault{Op: "write", After: 0, Kind: Drop}))
	n, err := a.Write([]byte("gone"))
	if err != nil || n != 4 {
		t.Fatalf("dropped write reported n=%d err=%v", n, err)
	}
	// The second write passes through.
	go a.Write([]byte("kept"))
	buf := make([]byte, 16)
	k, err := b.Read(buf)
	if err != nil || string(buf[:k]) != "kept" {
		t.Fatalf("read %q err %v", buf[:k], err)
	}
}

func TestStallHonorsDeadline(t *testing.T) {
	a, _ := pipePair(NewScript(Fault{Op: "write", After: 0, Kind: Stall}))
	a.SetWriteDeadline(time.Now().Add(20 * time.Millisecond))
	start := time.Now()
	_, err := a.Write([]byte("x"))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled write err = %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("stall ignored the deadline")
	}
}

func TestStallReleasedByClose(t *testing.T) {
	a, _ := pipePair(NewScript(Fault{Op: "read", After: 0, Kind: Stall}))
	done := make(chan error, 1)
	go func() {
		_, err := a.Read(make([]byte, 1))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("stalled read err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stalled read never released")
	}
}

func TestCorruptFlipsFirstByte(t *testing.T) {
	a, b := pipePair(NewScript(Fault{Op: "write", After: 0, Kind: Corrupt}))
	go a.Write([]byte("{ok}"))
	buf := make([]byte, 16)
	n, err := b.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if buf[0] != '{'^0xff || !bytes.Equal(buf[1:n], []byte("ok}")) {
		t.Fatalf("read %q", buf[:n])
	}
}

func TestPartialWriteCloses(t *testing.T) {
	a, b := pipePair(NewScript(Fault{Op: "write", After: 0, Kind: Partial}))
	got := make(chan []byte, 1)
	go func() {
		var all []byte
		buf := make([]byte, 16)
		for {
			n, err := b.Read(buf)
			all = append(all, buf[:n]...)
			if err != nil {
				break
			}
		}
		got <- all
	}()
	n, err := a.Write([]byte("123456"))
	if err == nil {
		t.Fatal("partial write should error")
	}
	if n != 3 {
		t.Fatalf("partial write n = %d", n)
	}
	if all := <-got; string(all) != "123" {
		t.Fatalf("receiver saw %q", all)
	}
}

func TestCloseFault(t *testing.T) {
	a, _ := pipePair(NewScript(Fault{Op: "write", After: 0, Kind: Close}))
	if _, err := a.Write([]byte("x")); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("err = %v", err)
	}
	if _, err := a.Write([]byte("y")); err == nil {
		t.Fatal("write after close should fail")
	}
}

func TestFaultFiresOnce(t *testing.T) {
	s := NewScript(Fault{Op: "write", After: 1, Kind: Drop})
	if _, ok := s.next("write"); ok {
		t.Fatal("fault fired early")
	}
	if f, ok := s.next("write"); !ok || f.Kind != Drop {
		t.Fatal("fault did not fire")
	}
	if _, ok := s.next("write"); ok {
		t.Fatal("fault fired twice")
	}
	if s.Fired() != 1 {
		t.Fatalf("fired = %d", s.Fired())
	}
}

func TestAnyOpCountsTotals(t *testing.T) {
	s := NewScript(Fault{Op: "", After: 2, Kind: Close})
	s.next("read")
	s.next("write")
	if f, ok := s.next("read"); !ok || f.Kind != Close {
		t.Fatal("third operation should fault")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, 5, 10)
	b := Generate(42, 5, 10)
	if len(a.faults) != 5 || len(b.faults) != 5 {
		t.Fatal("wrong length")
	}
	for i := range a.faults {
		if a.faults[i] != b.faults[i] {
			t.Fatalf("fault %d differs: %v vs %v", i, a.faults[i], b.faults[i])
		}
	}
	c := Generate(43, 5, 10)
	same := true
	for i := range a.faults {
		if a.faults[i] != c.faults[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical scripts")
	}
}

func TestListenerWrapsPerConnection(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fl := WrapListener(l, func(i int) *Script {
		if i == 0 {
			return NewScript(Fault{Op: "read", After: 0, Kind: Close})
		}
		return nil // later connections are clean
	})
	accepted := make(chan net.Conn, 2)
	go func() {
		for {
			c, err := fl.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()
	c1, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	s1 := <-accepted
	if _, err := s1.Read(make([]byte, 1)); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("first conn read err = %v", err)
	}
	c2, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	s2 := <-accepted
	go c2.Write([]byte("ok"))
	buf := make([]byte, 2)
	if _, err := s2.Read(buf); err != nil || string(buf) != "ok" {
		t.Fatalf("second conn read %q err %v", buf, err)
	}
	s2.Close()
}
