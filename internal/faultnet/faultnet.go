// Package faultnet wraps net.Conn and net.Listener with scripted fault
// injection, so tests can prove how a protocol behaves on a bad network
// without a bad network. The paper's Discussion imagines help making "an
// invisible call to the CPU server"; the call is only invisible if the
// file protocol survives dropped frames, stalls, and half-written
// responses. This package makes those failures reproducible.
//
// A Script is an ordered set of Faults, each naming the operation
// ("read" or "write"), the index of the operation to sabotage, and the
// Kind of sabotage. Scripts can be written by hand for targeted tests or
// derived deterministically from a seed with Generate for matrix tests.
// Every fault fires exactly once; the connection otherwise behaves like
// the one it wraps.
package faultnet

import (
	"math/rand"
	"net"
	"os"
	"sync"
	"time"
)

// Kind enumerates the sabotage a Fault applies.
type Kind int

const (
	// Drop swallows the data: a write reports success without sending;
	// a read discards one buffer of received data and reads again.
	Drop Kind = iota
	// Stall blocks the operation until the connection's deadline passes
	// or the connection is closed.
	Stall
	// Partial delivers only a prefix (half a write, one byte of a read)
	// and then closes the connection — a close-mid-response.
	Partial
	// Corrupt flips the first byte of the frame before delivery,
	// guaranteeing the receiver sees a malformed frame.
	Corrupt
	// Close closes the connection before the operation happens.
	Close
)

// String names the kind for test output.
func (k Kind) String() string {
	switch k {
	case Drop:
		return "drop"
	case Stall:
		return "stall"
	case Partial:
		return "partial"
	case Corrupt:
		return "corrupt"
	case Close:
		return "close"
	}
	return "unknown"
}

// Fault is one scripted failure: the After'th operation matching Op
// misbehaves per Kind. Op is "read", "write", or "" for either (counted
// over all operations).
type Fault struct {
	Op    string
	After int
	Kind  Kind
}

// Script is a consumable fault plan for one connection. It is safe for
// concurrent use by the connection's reader and writer.
type Script struct {
	mu     sync.Mutex
	faults []Fault
	used   []bool
	reads  int
	writes int
	total  int
	fired  int
}

// NewScript returns a script applying the given faults in order.
func NewScript(faults ...Fault) *Script {
	return &Script{faults: faults, used: make([]bool, len(faults))}
}

// Generate derives a pseudo-random script from seed: n faults spread
// over the first span operations of a connection. The same seed always
// yields the same script.
func Generate(seed int64, n, span int) *Script {
	rng := rand.New(rand.NewSource(seed))
	kinds := []Kind{Drop, Stall, Partial, Corrupt, Close}
	ops := []string{"read", "write"}
	faults := make([]Fault, n)
	for i := range faults {
		faults[i] = Fault{
			Op:    ops[rng.Intn(len(ops))],
			After: rng.Intn(span),
			Kind:  kinds[rng.Intn(len(kinds))],
		}
	}
	return NewScript(faults...)
}

// Fired reports how many faults have triggered so far.
func (s *Script) Fired() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired
}

// Faults returns a copy of the script's fault list, fired or not.
func (s *Script) Faults() []Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Fault(nil), s.faults...)
}

// next consumes and returns the fault to apply to this operation, if any.
func (s *Script) next(op string) (Fault, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int
	switch op {
	case "read":
		n = s.reads
		s.reads++
	case "write":
		n = s.writes
		s.writes++
	}
	total := s.total
	s.total++
	for i, f := range s.faults {
		if s.used[i] {
			continue
		}
		if (f.Op == op && f.After == n) || (f.Op == "" && f.After == total) {
			s.used[i] = true
			s.fired++
			return f, true
		}
	}
	return Fault{}, false
}

// Conn wraps a net.Conn, applying the script's faults to its reads and
// writes. Stalls honor deadlines set through SetDeadline and friends.
type Conn struct {
	inner  net.Conn
	script *Script

	closed    chan struct{}
	closeOnce sync.Once

	mu sync.Mutex // guards the recorded deadlines
	rd time.Time
	wd time.Time
}

// WrapConn applies script to c. A nil script injects nothing.
func WrapConn(c net.Conn, script *Script) *Conn {
	if script == nil {
		script = NewScript()
	}
	return &Conn{inner: c, script: script, closed: make(chan struct{})}
}

// Read applies any scripted read fault, then reads from the wrapped
// connection.
func (c *Conn) Read(p []byte) (int, error) {
	if f, ok := c.script.next("read"); ok {
		switch f.Kind {
		case Stall:
			return 0, c.stall(c.deadline(false))
		case Close:
			c.Close()
			return 0, net.ErrClosed
		case Corrupt:
			n, err := c.inner.Read(p)
			corrupt(p[:n])
			return n, err
		case Partial:
			if len(p) > 1 {
				p = p[:1]
			}
			n, err := c.inner.Read(p)
			c.Close()
			return n, err
		case Drop:
			buf := make([]byte, 4096)
			if _, err := c.inner.Read(buf); err != nil {
				return 0, err
			}
			return c.inner.Read(p)
		}
	}
	return c.inner.Read(p)
}

// Write applies any scripted write fault, then writes to the wrapped
// connection.
func (c *Conn) Write(p []byte) (int, error) {
	if f, ok := c.script.next("write"); ok {
		switch f.Kind {
		case Drop:
			return len(p), nil
		case Stall:
			return 0, c.stall(c.deadline(true))
		case Partial:
			n, _ := c.inner.Write(p[:(len(p)+1)/2])
			c.Close()
			return n, net.ErrClosed
		case Corrupt:
			q := append([]byte(nil), p...)
			corrupt(q)
			return c.inner.Write(q)
		case Close:
			c.Close()
			return 0, net.ErrClosed
		}
	}
	return c.inner.Write(p)
}

// corrupt flips the first byte, which for a JSON frame breaks the
// opening delimiter so the receiver reliably sees a malformed frame
// (rather than silently corrupted payload data).
func corrupt(p []byte) {
	if len(p) > 0 {
		p[0] ^= 0xff
	}
}

// stall blocks until the deadline passes or the connection closes.
func (c *Conn) stall(dl time.Time) error {
	var timer <-chan time.Time
	if !dl.IsZero() {
		d := time.Until(dl)
		if d <= 0 {
			return os.ErrDeadlineExceeded
		}
		t := time.NewTimer(d)
		defer t.Stop()
		timer = t.C
	}
	select {
	case <-c.closed:
		return net.ErrClosed
	case <-timer:
		return os.ErrDeadlineExceeded
	}
}

// Close closes the wrapped connection and releases any stalled
// operations.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.inner.Close()
}

func (c *Conn) deadline(write bool) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if write {
		return c.wd
	}
	return c.rd
}

// SetDeadline records and forwards both deadlines.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.rd, c.wd = t, t
	c.mu.Unlock()
	return c.inner.SetDeadline(t)
}

// SetReadDeadline records and forwards the read deadline.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.rd = t
	c.mu.Unlock()
	return c.inner.SetReadDeadline(t)
}

// SetWriteDeadline records and forwards the write deadline.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.wd = t
	c.mu.Unlock()
	return c.inner.SetWriteDeadline(t)
}

// LocalAddr returns the wrapped connection's local address.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr returns the wrapped connection's remote address.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// Listener wraps a net.Listener so each accepted connection carries a
// fault script.
type Listener struct {
	net.Listener
	// NewScript supplies the script for the i'th accepted connection
	// (0-based). Nil function or nil script means a clean connection.
	NewScript func(i int) *Script

	mu sync.Mutex
	n  int
}

// WrapListener applies newScript to every connection l accepts.
func WrapListener(l net.Listener, newScript func(i int) *Script) *Listener {
	return &Listener{Listener: l, NewScript: newScript}
}

// Accept wraps the next accepted connection with its script.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	i := l.n
	l.n++
	l.mu.Unlock()
	if l.NewScript == nil {
		return c, nil
	}
	s := l.NewScript(i)
	if s == nil {
		return c, nil
	}
	return WrapConn(c, s), nil
}
