package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/event"
	"repro/internal/geom"
	"repro/internal/shell"
	"repro/internal/userland"
	"repro/internal/vfs"
)

// checkInvariants asserts the structural invariants that must hold after
// any interaction:
//   - every selection lies within its buffer,
//   - displayed windows in a column have strictly increasing tops,
//   - every displayed window's span is positive and tops lie in the
//     column rectangle,
//   - the rendered screen never panics and has the right dimensions.
func checkInvariants(t *testing.T, h *Help) {
	t.Helper()
	for _, w := range h.Windows() {
		for sub := 0; sub < 2; sub++ {
			sel := w.Sel[sub]
			n := w.Buffer(sub).Len()
			if sel.Q0 < 0 || sel.Q1 < sel.Q0 || sel.Q1 > n {
				t.Fatalf("window %d sub %d: selection %+v out of [0,%d]", w.ID, sub, sel, n)
			}
		}
	}
	for ci := 0; ci < h.Columns(); ci++ {
		col := h.cols[ci]
		prev := -1
		for _, w := range col.displayed() {
			if w.top <= prev {
				t.Fatalf("column %d: tops not strictly increasing (%d after %d)", ci, w.top, prev)
			}
			prev = w.top
			if w.top < col.r.Min.Y || w.top >= col.r.Max.Y {
				t.Fatalf("column %d: top %d outside %v", ci, w.top, col.r)
			}
			if col.visibleSpan(w) < 1 {
				t.Fatalf("column %d: displayed window %d has span %d", ci, w.ID, col.visibleSpan(w))
			}
		}
	}
	h.Render()
	sw, sh := h.Screen().Size()
	if sw <= 0 || sh <= 0 {
		t.Fatal("degenerate screen")
	}
}

// randomWorld builds a small help world for property tests.
func randomWorld(t *testing.T) *Help {
	t.Helper()
	fs := vfs.New()
	fs.MkdirAll("/bin")
	fs.MkdirAll("/f")
	fs.WriteFile("/f/a.txt", []byte(strings.Repeat("alpha beta gamma\n", 8)))
	fs.WriteFile("/f/b.txt", []byte("short\n"))
	sh := shell.New(fs)
	userland.Install(sh)
	return New(fs, sh, 60, 24)
}

// TestRandomEventStormNoPanic feeds thousands of random mouse and
// keyboard events through the full pipeline; nothing may panic and the
// invariants must hold throughout.
func TestRandomEventStormNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := randomWorld(t)
	h.OpenFile("/f/a.txt", "")
	h.OpenFile("/f/b.txt", "")

	buttons := []int{0, event.Left, event.Middle, event.Right,
		event.Left | event.Middle, event.Left | event.Right}
	keys := []rune{'x', '\n', '\t', '\b', 0x7f, 'é', ' '}
	for i := 0; i < 4000; i++ {
		if rng.Intn(5) == 0 {
			h.Handle(event.KbdEvent(keys[rng.Intn(len(keys))]))
		} else {
			p := geom.Pt(rng.Intn(64)-2, rng.Intn(28)-2)
			h.Handle(event.MouseEvent(event.Mouse{Pt: p, Buttons: buttons[rng.Intn(len(buttons))]}))
		}
		if h.Exited() {
			break
		}
		if i%500 == 0 {
			checkInvariants(t, h)
		}
	}
	// Make sure the machine is not stuck mid-gesture forever: release.
	h.Handle(event.MouseEvent(event.Mouse{Pt: geom.Pt(0, 0), Buttons: 0}))
	checkInvariants(t, h)
	// The event-loop panic guard must not have been masking failures.
	if n := h.PanicCount(); n != 0 {
		t.Fatalf("panic guard recovered %d panics during the storm", n)
	}
}

// TestRandomCommandStormNoPanic executes random command strings — words
// that may or may not be built-ins, paths, globs, shell syntax — against
// random windows.
func TestRandomCommandStormNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := randomWorld(t)
	w1, _ := h.OpenFile("/f/a.txt", "")
	cmds := []string{
		"Cut", "Paste", "Snarf", "New", "Open", "Open /f/b.txt", "Open /ghost",
		"Open b.txt:2", "Write", "Pattern beta", "Pattern zzz", "Text hello",
		"Undo", "Redo", "Get!", "Put!", "Clone!", "cat a.txt", "grep alpha *.txt",
		"echo hi | sort", "nonsense-cmd", "ls", "", "   ", "Close!",
	}
	for i := 0; i < 400; i++ {
		wins := h.Windows()
		if len(wins) == 0 {
			w1, _ = h.OpenFile("/f/a.txt", "")
			wins = h.Windows()
		}
		w := wins[rng.Intn(len(wins))]
		// Random selection on a random window first.
		if n := w.Body.Len(); n > 0 && rng.Intn(2) == 0 {
			q0 := rng.Intn(n + 1)
			q1 := rng.Intn(n + 1)
			w.SetSelection(SubBody, q0, q1)
			h.SetCurrent(w, SubBody)
		}
		h.Execute(w, cmds[rng.Intn(len(cmds))])
		if h.Exited() {
			t.Fatal("no Exit in the command list, but help exited")
		}
		if i%50 == 0 {
			checkInvariants(t, h)
		}
	}
	_ = w1
	if n := h.PanicCount(); n != 0 {
		t.Fatalf("panic guard recovered %d panics during the storm", n)
	}
}

// TestPlacementInvariantProperty opens random batches of windows with
// random body sizes and checks the heuristic's contract every time.
func TestPlacementInvariantProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		if len(sizes) > 24 {
			sizes = sizes[:24]
		}
		h := randomWorld(t)
		for _, sz := range sizes {
			w := h.NewWindowIn(0)
			w.Body.SetString(strings.Repeat("x\n", int(sz%60)))
			h.SetCurrent(w, SubBody)
			// Contract: the newly placed window always has a useful span.
			if span := h.VisibleSpan(w); span < minVisible {
				t.Logf("new window span = %d after %d windows", span, len(h.Windows()))
				return false
			}
		}
		// And globally: displayed windows have positive span, hidden have 0.
		for _, w := range h.Windows() {
			span := h.VisibleSpan(w)
			if w.Hidden() && span != 0 {
				return false
			}
			if !w.Hidden() && span < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSelectionClampProperty: SetSelection never stores out-of-range
// values, whatever is thrown at it.
func TestSelectionClampProperty(t *testing.T) {
	h := randomWorld(t)
	w, _ := h.OpenFile("/f/a.txt", "")
	n := w.Body.Len()
	f := func(q0, q1 int16) bool {
		w.SetSelection(SubBody, int(q0), int(q1))
		sel := w.Sel[SubBody]
		return sel.Q0 >= 0 && sel.Q0 <= sel.Q1 && sel.Q1 <= n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestEditKeepsSelectionsValid: arbitrary buffer edits plus the tag
// refresh never leave a stale selection.
func TestEditKeepsSelectionsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := randomWorld(t)
	w, _ := h.OpenFile("/f/a.txt", "")
	h.SetCurrent(w, SubBody)
	for i := 0; i < 500; i++ {
		n := w.Body.Len()
		switch rng.Intn(4) {
		case 0:
			w.Body.Insert(rng.Intn(n+1), "zz")
		case 1:
			if n > 0 {
				off := rng.Intn(n)
				w.Body.Delete(off, rng.Intn(n-off+1))
			}
		case 2:
			w.SetSelection(SubBody, rng.Intn(n+1), rng.Intn(n+1))
		case 3:
			h.Cut()
		}
		w.Sel[SubBody] = clampSel(w.Sel[SubBody], w.Body.Len())
		checkInvariants(t, h)
	}
}

// TestMoveWindowEverywhere drags a window to every cell of the screen;
// the layout must stay sane at each drop.
func TestMoveWindowEverywhere(t *testing.T) {
	h := randomWorld(t)
	w, _ := h.OpenFile("/f/a.txt", "")
	h.OpenFile("/f/b.txt", "")
	for y := -1; y < 26; y++ {
		for x := -1; x < 62; x += 7 {
			h.MoveWindow(w, geom.Pt(x, y))
			checkInvariants(t, h)
		}
	}
}
