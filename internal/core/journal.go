package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"time"

	"repro/internal/journal"
	"repro/internal/vfs"
)

// This file threads the write-ahead journal through help. The design
// records state mutations, not input events:
//
//   - Text edits are captured at the single choke point every edit
//     funnels through — text.Buffer's primitive splice hook — so
//     typing, Cut, Paste, Undo, Redo, Get!, and file-interface writes
//     all journal identically, as OpSplice records.
//   - Everything else (selections, focus, layout, scroll, snarf,
//     clean/dirty flags) is captured by a shadow-state sweep that runs
//     at the end of each top-level interaction and emits one record
//     per observed difference. The sweep makes the journal independent
//     of *why* state changed: a placement heuristic's side effects are
//     journaled as the moves it made, so replay never re-runs the
//     heuristic and cannot diverge from it.
//   - Namespace mutations (Put, tool output, mkdir, bind) arrive
//     through vfs's mutation hook as OpFile records.
//
// Recovery = restore the latest checkpoint snapshot, then apply the op
// tail. Undo history and interaction metrics are deliberately not
// journaled: they are reconstruction conveniences, not session state,
// and their loss across a crash is documented behaviour.

// Recorder connects a Help instance to a journal.Writer.
type Recorder struct {
	h     *Help
	w     *journal.Writer
	every int // checkpoint after this many ops
	since int

	// Shadow state for the sweep diff.
	split    int
	curWin   int
	curSub   int
	snarf    string
	errorsID int
	shadows  map[int]*winShadow
	order    []int // shadow IDs, sorted: the sweep's iteration order
}

// winShadow mirrors the swept per-window fields. A fresh window gets
// col = -1, a sentinel no real window matches, so the first sweep
// after creation always emits its placement.
type winShadow struct {
	col      int
	top      int
	hidden   bool
	isDir    bool
	org      int
	sel      [2]Selection
	modified bool
}

// AttachJournal connects h to jw: every subsequent mutation is
// journaled, and a full checkpoint is written immediately (so the
// journal is self-contained from the first record). checkpointEvery
// bounds the replay tail: a new checkpoint plus compaction happens
// after that many ops. Call RecoverSession first when resuming.
func (h *Help) AttachJournal(jw *journal.Writer, checkpointEvery int) *Recorder {
	h.mu.Lock()
	defer h.mu.Unlock()
	if checkpointEvery <= 0 {
		checkpointEvery = 2048
	}
	rec := &Recorder{
		h:       h,
		w:       jw,
		every:   checkpointEvery,
		shadows: map[int]*winShadow{},
	}
	h.rec = rec
	jw.SetObs(h.Obs)

	for _, w := range h.windows() {
		rec.hookBuffers(w)
		rec.shadows[w.ID] = rec.shadowOf(w)
		rec.insertOrder(w.ID)
	}
	rec.split = h.cols[0].r.Max.X
	rec.curWin, rec.curSub = rec.currentIDs()
	rec.snarf = h.snarf
	rec.errorsID = h.errorsID()

	prevCreated := h.OnWindowCreated
	h.OnWindowCreated = func(w *Window) {
		rec.windowCreated(w)
		if prevCreated != nil {
			prevCreated(w)
		}
	}
	prevClosed := h.OnWindowClosed
	h.OnWindowClosed = func(w *Window) {
		rec.windowClosed(w)
		if prevClosed != nil {
			prevClosed(w)
		}
	}
	h.FS.SetOnMutate(rec.fsMutated)

	jw.Checkpoint(encodeSnapshot(h))
	return rec
}

// Journal returns the attached writer, or nil.
func (h *Help) Journal() *journal.Writer {
	if h.rec == nil {
		return nil
	}
	return h.rec.w
}

func (rec *Recorder) currentIDs() (int, int) {
	if rec.h.curWin == nil {
		return 0, 0
	}
	return rec.h.curWin.ID, rec.h.curSub
}

// errorsID is the live Errors window's id, 0 when none exists.
func (h *Help) errorsID() int {
	if h.errors == nil || h.byID[h.errors.ID] != h.errors {
		return 0
	}
	return h.errors.ID
}

func (rec *Recorder) shadowOf(w *Window) *winShadow {
	return &winShadow{
		col:      rec.h.colIndex(w.col),
		top:      w.top,
		hidden:   w.hidden,
		isDir:    w.IsDir,
		org:      w.bodyOrg,
		sel:      w.Sel,
		modified: w.Body.Modified(),
	}
}

// colIndex returns the index of col in h.cols, 0 as a fallback.
func (h *Help) colIndex(col *Column) int {
	for i, c := range h.cols {
		if c == col {
			return i
		}
	}
	return 0
}

func (rec *Recorder) hookBuffers(w *Window) {
	id := w.ID
	w.Tag.SetOnSplice(func(off, ndel int, ins string) {
		rec.emit(&journal.Op{Kind: journal.OpSplice, Win: id, Sub: SubTag, P0: off, P1: ndel, Str1: ins})
	})
	w.Body.SetOnSplice(func(off, ndel int, ins string) {
		rec.emit(&journal.Op{Kind: journal.OpSplice, Win: id, Sub: SubBody, P0: off, P1: ndel, Str1: ins})
	})
}

func (rec *Recorder) emit(op *journal.Op) {
	rec.w.Append(op)
	rec.since++
}

func (rec *Recorder) windowCreated(w *Window) {
	rec.hookBuffers(w)
	sh := rec.shadowOf(w)
	sh.col = -1 // sentinel: first sweep must emit placement
	rec.shadows[w.ID] = sh
	rec.insertOrder(w.ID)
	rec.emit(&journal.Op{Kind: journal.OpNewWin, Win: w.ID, Flag: w.IsDir})
}

func (rec *Recorder) windowClosed(w *Window) {
	delete(rec.shadows, w.ID)
	rec.removeOrder(w.ID)
	rec.emit(&journal.Op{Kind: journal.OpCloseWin, Win: w.ID})
}

func (rec *Recorder) insertOrder(id int) {
	i := sort.SearchInts(rec.order, id)
	if i < len(rec.order) && rec.order[i] == id {
		return
	}
	rec.order = append(rec.order, 0)
	copy(rec.order[i+1:], rec.order[i:])
	rec.order[i] = id
}

func (rec *Recorder) removeOrder(id int) {
	i := sort.SearchInts(rec.order, id)
	if i < len(rec.order) && rec.order[i] == id {
		rec.order = append(rec.order[:i], rec.order[i+1:]...)
	}
}

func (rec *Recorder) fsMutated(kind vfs.MutKind, p string, data []byte, aux string, flag int) {
	str2 := string(data)
	if kind == vfs.MutBind {
		str2 = aux
	}
	rec.emit(&journal.Op{Kind: journal.OpFile, P0: int(kind), P1: flag, Str1: p, Str2: str2})
}

// JournalSweep diffs the session state against the recorder's shadows
// and journals every difference, then writes a checkpoint if the op
// budget since the last one is spent. It runs at the end of every
// top-level interaction (event, command, file-interface operation); a
// quiescent sweep emits nothing. It must never take help down, so it
// recovers its own panics.
func (h *Help) JournalSweep() {
	defer func() { recover() }()
	// The notify sweep rides the same interaction boundary: whatever
	// reached a sweep point is also what subscribers should hear about.
	h.notifySweep()
	rec := h.rec
	if rec == nil {
		return
	}
	rec.sweep()
}

func (rec *Recorder) sweep() {
	h := rec.h

	if cw, cs := rec.currentIDs(); cw != rec.curWin || cs != rec.curSub {
		rec.curWin, rec.curSub = cw, cs
		rec.emit(&journal.Op{Kind: journal.OpCurrent, Win: cw, Sub: cs})
	}
	if h.snarf != rec.snarf {
		rec.snarf = h.snarf
		rec.emit(&journal.Op{Kind: journal.OpSnarf, Str1: h.snarf})
	}
	if split := h.cols[0].r.Max.X; split != rec.split {
		rec.split = split
		rec.emit(&journal.Op{Kind: journal.OpColSplit, P0: split})
	}
	if eid := h.errorsID(); eid != rec.errorsID {
		rec.errorsID = eid
		rec.emit(&journal.Op{Kind: journal.OpErrors, Win: eid})
	}
	if len(rec.shadows) != len(h.byID) {
		// Shouldn't happen (creation and close are hooked), but journal
		// the strays rather than lose them.
		for _, w := range h.windows() {
			if rec.shadows[w.ID] == nil {
				rec.windowCreated(w)
			}
		}
		for _, id := range append([]int(nil), rec.order...) {
			if h.byID[id] == nil {
				delete(rec.shadows, id)
				rec.removeOrder(id)
				rec.emit(&journal.Op{Kind: journal.OpCloseWin, Win: id})
			}
		}
	}
	for _, id := range rec.order {
		w := h.byID[id]
		if w == nil {
			continue
		}
		sh := rec.shadows[w.ID]
		col := h.colIndex(w.col)
		if col != sh.col || w.top != sh.top || w.hidden != sh.hidden || w.IsDir != sh.isDir {
			sh.col, sh.top, sh.hidden, sh.isDir = col, w.top, w.hidden, w.IsDir
			bits := 0
			if w.hidden {
				bits |= 1
			}
			if w.IsDir {
				bits |= 2
			}
			rec.emit(&journal.Op{Kind: journal.OpPlace, Win: w.ID, P0: col, P1: w.top, P2: bits})
		}
		if w.bodyOrg != sh.org {
			sh.org = w.bodyOrg
			rec.emit(&journal.Op{Kind: journal.OpScroll, Win: w.ID, P0: w.bodyOrg})
		}
		for sub := 0; sub < 2; sub++ {
			if w.Sel[sub] != sh.sel[sub] {
				sh.sel[sub] = w.Sel[sub]
				rec.emit(&journal.Op{Kind: journal.OpSelect, Win: w.ID, Sub: sub, P0: w.Sel[sub].Q0, P1: w.Sel[sub].Q1})
			}
		}
		if m := w.Body.Modified(); m != sh.modified {
			sh.modified = m
			rec.emit(&journal.Op{Kind: journal.OpClean, Win: w.ID, Flag: !m})
		}
	}
	if rec.since >= rec.every {
		rec.since = 0
		rec.w.Checkpoint(encodeSnapshot(h))
	}
}

// recoverPanic is deferred by the event loop and command executor: a
// panic anywhere below becomes a crash report plus an Errors-window
// fault instead of a dead session.
func (h *Help) recoverPanic(where string) {
	r := recover()
	if r == nil {
		return
	}
	h.PanicReport(where, r, debug.Stack())
}

// PanicReport handles a recovered panic: count it, flush the journal
// (the record of how we got here must survive), write a crash report
// next to the journal, and surface the fault through the Errors window.
// Reporting must never re-panic. Like JournalSweep, it runs with the
// actor lock already held: its callers are in-loop guards and device
// handlers reached through the serialized namespace view.
func (h *Help) PanicReport(where string, r any, stack []byte) {
	h.panicCount++
	defer func() { recover() }()
	if h.Obs != nil {
		h.Obs.Event("panic", fmt.Sprintf("%s: %v", where, r))
	}
	detail := ""
	if h.rec != nil {
		h.rec.w.Flush()
		report := fmt.Sprintf("panic in %s: %v\n\n%s", where, r, stack)
		if name, err := h.rec.w.WriteCrashReport([]byte(report)); err == nil {
			detail = " (crash report " + name + ")"
		}
	}
	if h.OnCrash != nil {
		h.OnCrash(where, fmt.Errorf("recovered panic: %v", r))
	}
	h.reportFault(where, fmt.Errorf("recovered panic: %v%s", r, detail))
}

// ReportPanicAsync reports a panic recovered in code that runs WITHOUT
// the actor lock (the blocking device reads vfs.ReadWait dispatches):
// the report itself needs the lock, so it is applied through the queue.
func (h *Help) ReportPanicAsync(where string, r any, stack []byte) {
	h.enqueue(func() { h.PanicReport(where, r, stack) })
}

// PanicCount reports how many panics the guards have recovered; the
// invariant tests assert it stays zero.
func (h *Help) PanicCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.panicCount
}

// SyncJournal makes the journal durable right now: sweep any pending
// state, write a checkpoint, and flush everything to the medium. It is
// what signal handlers and the daemon's drain call before exiting, so
// a SIGTERM never loses the WAL tail. With no journal attached it is a
// no-op. It returns the first write error the journal has seen.
func (h *Help) SyncJournal() error {
	h.mu.Lock()
	rec := h.rec
	if rec == nil {
		h.mu.Unlock()
		return nil
	}
	h.JournalSweep()
	snap := encodeSnapshot(h)
	h.mu.Unlock()
	// Enqueue outside the lock: a full journal queue must never stall
	// the actor.
	rec.w.Checkpoint(snap)
	return rec.w.Flush()
}

// ---------------------------------------------------------------------
// Checkpoint snapshots.

const snapMagic = "HELPSNAP"
const snapVersion = 1

type snapWindow struct {
	id       int
	col      int
	top      int
	hidden   bool
	isDir    bool
	org      int
	tag      string
	body     string
	sel      [2]Selection
	modified bool
}

type snapshot struct {
	width, height int
	split         int
	nextID        int
	curWin        int
	curSub        int
	snarf         string
	errorsID      int
	windows       []snapWindow
	files         []vfs.DumpEntry
	binds         map[string][]string
}

func appendStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendInt(dst []byte, v int) []byte {
	return binary.AppendVarint(dst, int64(v))
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// encodeSnapshot serializes the whole session: geometry, windows
// (full text, selections, flags), focus, snarf, and the namespace.
func encodeSnapshot(h *Help) []byte {
	sw, sh := h.screen.Size()
	b := []byte(snapMagic)
	b = binary.AppendUvarint(b, snapVersion)
	b = appendInt(b, sw)
	b = appendInt(b, sh)
	b = appendInt(b, h.cols[0].r.Max.X)
	b = appendInt(b, h.nextID)
	cw, cs := 0, 0
	if h.curWin != nil {
		cw, cs = h.curWin.ID, h.curSub
	}
	b = appendInt(b, cw)
	b = appendInt(b, cs)
	b = appendStr(b, h.snarf)
	eid := 0
	if h.errors != nil {
		eid = h.errors.ID
	}
	b = appendInt(b, eid)

	wins := h.windows()
	b = appendInt(b, len(wins))
	for _, w := range wins {
		b = appendInt(b, w.ID)
		b = appendInt(b, h.colIndex(w.col))
		b = appendInt(b, w.top)
		b = appendBool(b, w.hidden)
		b = appendBool(b, w.IsDir)
		b = appendInt(b, w.bodyOrg)
		b = appendStr(b, w.Tag.String())
		b = appendStr(b, w.Body.String())
		for sub := 0; sub < 2; sub++ {
			b = appendInt(b, w.Sel[sub].Q0)
			b = appendInt(b, w.Sel[sub].Q1)
		}
		b = appendBool(b, w.Body.Modified())
	}

	files, binds := h.FS.Dump()
	b = appendInt(b, len(files))
	for _, e := range files {
		b = appendStr(b, e.Path)
		b = appendBool(b, e.Dir)
		b = appendStr(b, string(e.Data))
	}
	b = appendInt(b, len(binds))
	for _, mp := range sortedKeys(binds) {
		b = appendStr(b, mp)
		srcs := binds[mp]
		b = appendInt(b, len(srcs))
		for _, s := range srcs {
			b = appendStr(b, s)
		}
	}
	return b
}

func sortedKeys(m map[string][]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// snapDecoder is a bounds-checked cursor; errSnap on any overrun.
var errSnap = errors.New("core: malformed checkpoint snapshot")

type snapDecoder struct {
	b   []byte
	off int
	err error
}

func (d *snapDecoder) int() int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 || v < int64(-1<<31) || v > int64(1<<31) {
		d.err = errSnap
		return 0
	}
	d.off += n
	return int(v)
}

func (d *snapDecoder) uint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.err = errSnap
		return 0
	}
	d.off += n
	return v
}

func (d *snapDecoder) str() string {
	n := d.uint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.err = errSnap
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *snapDecoder) bool() bool {
	if d.err != nil || d.off >= len(d.b) {
		d.err = errSnap
		return false
	}
	c := d.b[d.off]
	d.off++
	return c != 0
}

func decodeSnapshot(b []byte) (*snapshot, error) {
	if len(b) < len(snapMagic) || string(b[:len(snapMagic)]) != snapMagic {
		return nil, errSnap
	}
	d := snapDecoder{b: b, off: len(snapMagic)}
	if v := d.uint(); d.err == nil && v != snapVersion {
		return nil, fmt.Errorf("core: checkpoint snapshot version %d not supported", v)
	}
	s := &snapshot{}
	s.width = d.int()
	s.height = d.int()
	s.split = d.int()
	s.nextID = d.int()
	s.curWin = d.int()
	s.curSub = d.int()
	s.snarf = d.str()
	s.errorsID = d.int()
	nw := d.int()
	if d.err != nil || nw < 0 || nw > 1<<20 {
		return nil, errSnap
	}
	for i := 0; i < nw; i++ {
		var w snapWindow
		w.id = d.int()
		w.col = d.int()
		w.top = d.int()
		w.hidden = d.bool()
		w.isDir = d.bool()
		w.org = d.int()
		w.tag = d.str()
		w.body = d.str()
		for sub := 0; sub < 2; sub++ {
			w.sel[sub].Q0 = d.int()
			w.sel[sub].Q1 = d.int()
		}
		w.modified = d.bool()
		if d.err != nil {
			return nil, d.err
		}
		s.windows = append(s.windows, w)
	}
	nf := d.int()
	if d.err != nil || nf < 0 || nf > 1<<24 {
		return nil, errSnap
	}
	for i := 0; i < nf; i++ {
		var e vfs.DumpEntry
		e.Path = d.str()
		e.Dir = d.bool()
		data := d.str()
		if !e.Dir {
			e.Data = []byte(data)
		}
		if d.err != nil {
			return nil, d.err
		}
		s.files = append(s.files, e)
	}
	nb := d.int()
	if d.err != nil || nb < 0 || nb > 1<<20 {
		return nil, errSnap
	}
	s.binds = make(map[string][]string, nb)
	for i := 0; i < nb; i++ {
		mp := d.str()
		ns := d.int()
		if d.err != nil || ns < 0 || ns > 1<<16 {
			return nil, errSnap
		}
		srcs := make([]string, 0, ns)
		for j := 0; j < ns; j++ {
			srcs = append(srcs, d.str())
		}
		if d.err != nil {
			return nil, d.err
		}
		s.binds[mp] = srcs
	}
	if d.err != nil {
		return nil, d.err
	}
	return s, nil
}

// ---------------------------------------------------------------------
// Recovery.

// RecoverResult summarizes a successful RecoverSession.
type RecoverResult struct {
	Ops        int
	CkptGen    uint64
	MaxGen     uint64
	Torn       bool
	TornReason string
	Elapsed    time.Duration
}

// RecoverSession restores h from the journal in fsys: the latest
// checkpoint, then the op tail in generation order. It must be called
// on a freshly built help (before AttachJournal); existing windows are
// closed and replaced by the recovered session. Any inconsistency —
// malformed snapshot, op referencing an unknown window, out-of-range
// splice — aborts with an error; nothing in here panics, whatever the
// journal contains.
func RecoverSession(h *Help, fsys journal.Fsys) (res *RecoverResult, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.rec != nil {
		return nil, errors.New("core: RecoverSession must run before AttachJournal")
	}
	st, err := journal.Load(fsys)
	if err != nil {
		return nil, err
	}
	if st.Checkpoint == nil {
		return nil, errors.New("core: journal has no checkpoint to recover from")
	}
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("core: recovery panicked: %v", r)
		}
	}()
	timer := journal.StartReplay(h.Obs)

	snap, err := decodeSnapshot(st.Checkpoint)
	if err != nil {
		return nil, err
	}
	if sw, sh := h.screen.Size(); sw != snap.width || sh != snap.height {
		return nil, fmt.Errorf("core: journal is for a %dx%d screen, this help is %dx%d",
			snap.width, snap.height, sw, sh)
	}
	if err := restoreSnapshot(h, snap); err != nil {
		return nil, err
	}
	for i := range st.Ops {
		if err := applyOp(h, &st.Ops[i]); err != nil {
			return nil, fmt.Errorf("core: replaying op %d (gen %d): %w", i, st.Ops[i].Gen, err)
		}
	}
	h.render()
	return &RecoverResult{
		Ops:        len(st.Ops),
		CkptGen:    st.CkptGen,
		MaxGen:     st.MaxGen,
		Torn:       st.Torn,
		TornReason: st.TornReason,
		Elapsed:    timer.Done(),
	}, nil
}

// restoreSnapshot replaces h's session state with the snapshot's.
func restoreSnapshot(h *Help, snap *snapshot) error {
	for _, w := range h.windows() {
		h.closeWindow(w)
	}
	if len(h.cols) == 2 && snap.split > 0 {
		h.cols[0].r.Max.X = snap.split
		h.cols[1].r.Min.X = snap.split
	}
	if err := h.FS.RestoreDump(snap.files, snap.binds); err != nil {
		return err
	}
	for i := range snap.windows {
		sw := &snap.windows[i]
		if sw.id <= 0 || h.byID[sw.id] != nil {
			return fmt.Errorf("snapshot window id %d invalid or duplicate", sw.id)
		}
		w := h.adoptWindow(sw.id)
		w.Tag.Load(sw.tag)
		w.Body.Load(sw.body)
		if sw.modified {
			w.Body.SetDirty()
		}
		placeAdopted(h, w, sw.col, sw.top, sw.hidden, sw.isDir)
		w.bodyOrg = clampOrg(sw.org, w.Body.Len())
		for sub := 0; sub < 2; sub++ {
			w.Sel[sub] = clampSel(sw.sel[sub], w.Buffer(sub).Len())
		}
	}
	if snap.nextID > h.nextID {
		h.nextID = snap.nextID
	}
	h.curWin, h.curSub = nil, 0
	if cw := h.byID[snap.curWin]; cw != nil {
		h.curWin, h.curSub = cw, snap.curSub
	}
	h.snarf = snap.snarf
	h.errors = h.byID[snap.errorsID]
	return nil
}

// adoptWindow recreates a journaled window under its original id,
// bypassing the placement heuristic: the heuristic's side effects were
// journaled as explicit place records, so replay positions windows
// from the record, never from a re-run of the heuristic.
func (h *Help) adoptWindow(id int) *Window {
	w := newWindow(id)
	h.byID[id] = w
	h.mWindows.Add(1)
	h.trackWindow(w)
	if id >= h.nextID {
		h.nextID = id + 1
	}
	col := h.cols[0]
	w.col = col
	w.top = col.r.Min.Y
	w.hidden = true // until the journaled placement arrives
	col.wins = append(col.wins, w)
	col.sortWins()
	if h.OnWindowCreated != nil {
		h.OnWindowCreated(w)
	}
	return w
}

func placeAdopted(h *Help, w *Window, colIdx, top int, hidden, isDir bool) {
	if colIdx < 0 || colIdx >= len(h.cols) {
		colIdx = 0
	}
	dst := h.cols[colIdx]
	if w.col != dst {
		h.colOf(w).removeWindow(w)
		dst.wins = append(dst.wins, w)
		w.col = dst
	}
	if top < dst.r.Min.Y {
		top = dst.r.Min.Y
	}
	if top > dst.r.Max.Y-1 {
		top = dst.r.Max.Y - 1
	}
	w.top = top
	w.hidden = hidden
	w.IsDir = isDir
	dst.sortWins()
}

func clampOrg(org, n int) int {
	if org < 0 {
		return 0
	}
	if org > n {
		return n
	}
	return org
}

// applyOp replays one journal record against the live session.
func applyOp(h *Help, op *journal.Op) error {
	needWin := func() (*Window, error) {
		w := h.byID[op.Win]
		if w == nil {
			return nil, fmt.Errorf("unknown window %d", op.Win)
		}
		return w, nil
	}
	switch op.Kind {
	case journal.OpSplice:
		w, err := needWin()
		if err != nil {
			return err
		}
		if op.Sub != SubTag && op.Sub != SubBody {
			return fmt.Errorf("bad subwindow %d", op.Sub)
		}
		return w.Buffer(op.Sub).ApplySplice(op.P0, op.P1, op.Str1)
	case journal.OpClean:
		w, err := needWin()
		if err != nil {
			return err
		}
		if op.Flag {
			w.Body.SetClean()
		} else {
			w.Body.SetDirty()
		}
	case journal.OpSelect:
		w, err := needWin()
		if err != nil {
			return err
		}
		if op.Sub != SubTag && op.Sub != SubBody {
			return fmt.Errorf("bad subwindow %d", op.Sub)
		}
		w.SetSelection(op.Sub, op.P0, op.P1)
	case journal.OpCurrent:
		if op.Win == 0 {
			h.curWin, h.curSub = nil, 0
			return nil
		}
		w, err := needWin()
		if err != nil {
			return err
		}
		h.curWin, h.curSub = w, op.Sub
	case journal.OpSnarf:
		h.snarf = op.Str1
	case journal.OpNewWin:
		if op.Win <= 0 || h.byID[op.Win] != nil {
			return fmt.Errorf("new-window id %d invalid or duplicate", op.Win)
		}
		w := h.adoptWindow(op.Win)
		w.IsDir = op.Flag
	case journal.OpCloseWin:
		w, err := needWin()
		if err != nil {
			return err
		}
		h.closeWindow(w)
	case journal.OpPlace:
		w, err := needWin()
		if err != nil {
			return err
		}
		placeAdopted(h, w, op.P0, op.P1, op.P2&1 != 0, op.P2&2 != 0)
	case journal.OpScroll:
		w, err := needWin()
		if err != nil {
			return err
		}
		w.bodyOrg = clampOrg(op.P0, w.Body.Len())
	case journal.OpColSplit:
		if len(h.cols) == 2 && op.P0 > 0 && op.P0 < h.screen.Bounds().Dx() {
			h.cols[0].r.Max.X = op.P0
			h.cols[1].r.Min.X = op.P0
		}
	case journal.OpErrors:
		if op.Win == 0 {
			h.errors = nil
			return nil
		}
		w, err := needWin()
		if err != nil {
			return err
		}
		h.errors = w
	case journal.OpFile:
		return applyFileOp(h, op)
	default:
		return fmt.Errorf("unknown op kind %d", op.Kind)
	}
	return nil
}

func applyFileOp(h *Help, op *journal.Op) error {
	switch vfs.MutKind(op.P0) {
	case vfs.MutWrite:
		return h.FS.WriteFile(op.Str1, []byte(op.Str2))
	case vfs.MutAppend:
		return h.FS.AppendFile(op.Str1, []byte(op.Str2))
	case vfs.MutRemove:
		// Idempotent: the record asserts the path's absence. A replayed
		// close can race helpfs's own cleanup of the window directory.
		if err := h.FS.Remove(op.Str1); err != nil && !errors.Is(err, vfs.ErrNotExist) {
			return err
		}
		return nil
	case vfs.MutMkdir:
		return h.FS.MkdirAll(op.Str1)
	case vfs.MutBind:
		return h.FS.Bind(op.Str1, op.Str2, vfs.BindFlag(op.P1))
	}
	return fmt.Errorf("unknown file mutation %d", op.P0)
}
