package core

import (
	"strings"
	"time"

	"repro/internal/draw"
	"repro/internal/frame"
	"repro/internal/geom"
	"repro/internal/text"
)

// winSig captures everything renderWindow reads for one window. Two equal
// signatures guarantee the window would paint identically, so comparing
// them is a sound damage check.
type winSig struct {
	id        int
	top       int
	span      int
	tag, body *text.Buffer // buffers can be swapped wholesale (OpenFile)
	tagGen    uint64
	bodyGen   uint64
	bodyOrg   int
	selTag    Selection
	selBody   Selection
	cur       int // current subwindow if this window owns the selection, else -1
	sweep     Selection
	sweepSub  int // subwindow of a live exec sweep in this window, else -1
}

// colSig is one column's damage signature: its rectangle, tab tower, and
// the signatures of its displayed windows in paint order.
type colSig struct {
	r     geom.Rect
	nWins int
	wins  []winSig
}

func (a colSig) equal(b colSig) bool {
	if a.r != b.r || a.nWins != b.nWins || len(a.wins) != len(b.wins) {
		return false
	}
	for i := range a.wins {
		if a.wins[i] != b.wins[i] {
			return false
		}
	}
	return true
}

// colSignature computes col's current signature.
func (h *Help) colSignature(col *Column) colSig {
	sig := colSig{r: col.r, nWins: len(col.wins)}
	for _, w := range col.displayed() {
		ws := winSig{
			id:       w.ID,
			top:      w.top,
			span:     col.visibleSpan(w),
			tag:      w.Tag,
			body:     w.Body,
			tagGen:   w.Tag.Gen(),
			bodyGen:  w.Body.Gen(),
			bodyOrg:  w.bodyOrg,
			selTag:   w.Sel[SubTag],
			selBody:  w.Sel[SubBody],
			cur:      -1,
			sweepSub: -1,
		}
		if h.curWin == w {
			ws.cur = h.curSub
		}
		if sw := h.sweepExec; sw != nil && sw.win == w {
			ws.sweep = Selection{sw.q0, sw.q1}
			ws.sweepSub = sw.sub
		}
		sig.wins = append(sig.wins, ws)
	}
	return sig
}

// Render paints the whole screen: the column tab row, each column's tab
// tower, and every displayed window (tag line, scroll bar, body). The
// current selection paints in reverse video; selections in other
// subwindows paint in outline, as the paper specifies.
//
// Rendering is incremental: each column's signature (geometry, window
// list, buffer generations, origins, selections, sweep state) is compared
// against the previous render, and only columns whose signature changed
// are repainted. A column layout change (resize, first render) forces a
// full repaint so the tab row and any vacated cells are refreshed.
func (h *Help) Render() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.render()
}

func (h *Help) render() {
	var t0 time.Time
	timed := h.ins.on && h.ins.sampleRender()
	if timed {
		t0 = time.Now()
	}
	sigs := make([]colSig, len(h.cols))
	for i, col := range h.cols {
		sigs[i] = h.colSignature(col)
	}
	full := !h.rendered || len(sigs) != len(h.lastColSigs)
	if !full {
		for i := range sigs {
			if sigs[i].r != h.lastColSigs[i].r {
				full = true
				break
			}
		}
	}
	if full {
		h.screen.Clear()
		h.renderColumnTabRow()
		for _, col := range h.cols {
			h.renderColumn(col)
		}
		h.renderExecSweep()
		if h.ins.on {
			h.ins.rendersFull.Inc()
			h.ins.colsRepainted.Add(int64(len(h.cols)))
			b := h.screen.Bounds()
			h.ins.cellsTouched.Add(int64(b.Dx() * b.Dy()))
		}
	} else {
		repainted, cells := 0, 0
		for i, col := range h.cols {
			if sigs[i].equal(h.lastColSigs[i]) {
				continue
			}
			repainted++
			cells += col.r.Dx() * col.r.Dy()
			h.screen.Fill(col.r, ' ', draw.Plain)
			h.renderColumn(col)
		}
		if repainted > 0 {
			// Re-applying the sweep underline is idempotent for columns
			// that were not repainted.
			h.renderExecSweep()
		}
		if h.ins.on {
			// The all-clean render is the hottest case of all; keep it to
			// the two meters that actually move.
			if repainted > 0 {
				h.ins.colsRepainted.Add(int64(repainted))
				h.ins.cellsTouched.Add(int64(cells))
			}
			h.ins.colsReused.Add(int64(len(h.cols) - repainted))
		}
	}
	h.lastColSigs = sigs
	h.rendered = true
	if h.ins.on {
		h.ins.renders.Inc()
		if timed {
			h.ins.renderHist.Observe(time.Since(t0))
		}
	}
}

// renderExecSweep underlines the text currently being swept with the
// middle button, Figure 2's transient state.
func (h *Help) renderExecSweep() {
	sw := h.sweepExec
	if sw == nil || h.byID[sw.win.ID] != sw.win {
		return
	}
	f := sw.win.frameFor(sw.sub)
	if f == nil {
		return
	}
	end := sw.q1
	if end == sw.q0 {
		end = sw.q0 + 1 // a click shows at least the cell under it
	}
	for off := sw.q0; off < end; off++ {
		if p, ok := f.PointOf(off); ok {
			c := h.screen.At(p)
			h.screen.Set(p, draw.Cell{R: c.R, Attr: draw.Underline})
		}
	}
}

// renderColumnTabRow draws the row of column-expansion tabs across the top.
func (h *Help) renderColumnTabRow() {
	for _, col := range h.cols {
		h.screen.SetRune(geom.Pt(col.r.Min.X, 0), '■', draw.TabCell)
	}
}

// renderColumn draws one column: the tower of per-window tabs down the
// left edge, then the displayed windows.
func (h *Help) renderColumn(col *Column) {
	// Tab tower: one square per window, visible or invisible, in order.
	for i := range col.wins {
		y := col.r.Min.Y + i
		if y >= col.r.Max.Y {
			break
		}
		h.screen.SetRune(geom.Pt(col.r.Min.X, y), '■', draw.TabCell)
	}
	for _, w := range col.displayed() {
		h.renderWindow(col, w)
	}
}

// renderWindow draws w's visible span: tag on the first row, scroll bar
// down the left of the body, body text in the rest.
func (h *Help) renderWindow(col *Column, w *Window) {
	span := col.visibleSpan(w)
	if span <= 0 {
		return
	}
	area := col.winRect()
	tagRect := geom.Rt(area.Min.X, w.top, area.Max.X, w.top+1)
	// Tag line: background tint, then laid-out tag text with selection.
	h.screen.Fill(tagRect, ' ', draw.Tag)
	w.tagFrame = frame.Reuse(w.tagFrame, w.Tag, tagRect, 0)
	h.renderSub(w, SubTag, w.tagFrame, draw.Tag)

	if span == 1 {
		w.bodyFrame = nil
		return
	}
	bodyRect := geom.Rt(area.Min.X+1, w.top+1, area.Max.X, w.top+span)
	barRect := geom.Rt(area.Min.X, w.top+1, area.Min.X+1, w.top+span)
	if w.bodyOrg > w.Body.Len() {
		w.bodyOrg = w.Body.Len()
	}
	w.bodyFrame = frame.Reuse(w.bodyFrame, w.Body, bodyRect, w.bodyOrg)
	h.renderSub(w, SubBody, w.bodyFrame, draw.Plain)
	h.renderScrollBar(w, barRect)
}

// renderSub paints one subwindow's frame with its selection in the proper
// attribute, preserving the background attribute bg for unselected cells.
func (h *Help) renderSub(w *Window, sub int, f *frame.Frame, bg draw.Attr) {
	sel := w.Sel[sub]
	attr := draw.Outline
	if h.curWin == w && h.curSub == sub {
		attr = draw.Reverse
	}
	f.Render(h.screen, sel.Q0, sel.Q1, attr)
	if bg == draw.Plain {
		return
	}
	// Re-tint cells the frame painted Plain.
	r := f.Rect()
	for y := r.Min.Y; y < r.Max.Y; y++ {
		for x := r.Min.X; x < r.Max.X; x++ {
			p := geom.Pt(x, y)
			if c := h.screen.At(p); c.Attr == draw.Plain {
				h.screen.Set(p, draw.Cell{R: c.R, Attr: bg})
			}
		}
	}
}

// renderScrollBar draws the window's scroll bar: a bar whose extent shows
// the visible fraction of the body and whose position shows the origin.
func (h *Help) renderScrollBar(w *Window, r geom.Rect) {
	rows := r.Dy()
	if rows <= 0 {
		return
	}
	total := w.Body.NLines()
	if total < 1 {
		total = 1
	}
	topLine := w.Body.LineAt(w.bodyOrg) - 1
	// The bar's extent is the fraction of the buffer on screen, computed
	// from the count of visible lines (the lines from the origin to the
	// end of the buffer or the gutter, whichever is nearer). Using rows
	// as the visible count made the extent rows²/total, which overflows
	// the gutter for short buffers and then mis-pins the bar position.
	visible := total - topLine
	if visible < 0 {
		visible = 0
	}
	if visible > rows {
		visible = rows
	}
	barTop := topLine * rows / total
	barLen := visible * rows / total
	if barLen < 1 {
		barLen = 1
	}
	if barLen > rows {
		barLen = rows
	}
	if barTop+barLen > rows {
		barTop = rows - barLen
	}
	if barTop < 0 {
		barTop = 0
	}
	for i := 0; i < rows; i++ {
		ch := '│'
		attr := draw.Border
		if i >= barTop && i < barTop+barLen {
			ch = '█'
		}
		h.screen.SetRune(geom.Pt(r.Min.X, r.Min.Y+i), ch, attr)
	}
}

// hit describes what lives under a screen point.
type hit struct {
	kind hitKind
	col  int // column index for tab-row and tower hits
	tab  int // tab index within the column's tower
	win  *Window
	sub  int // SubTag or SubBody for window hits
}

type hitKind int

const (
	hitNothing hitKind = iota
	hitColumnTab
	hitWindowTab
	hitWindow
	hitScrollBar
)

// hitTest locates p on the rendered screen. Render must have run so the
// window frames exist.
func (h *Help) hitTest(p geom.Point) hit {
	if p.Y == 0 {
		for i, col := range h.cols {
			if p.X == col.r.Min.X {
				return hit{kind: hitColumnTab, col: i}
			}
		}
		return hit{kind: hitNothing}
	}
	for ci, col := range h.cols {
		if !p.In(col.r) {
			continue
		}
		if p.X == col.r.Min.X {
			idx := p.Y - col.r.Min.Y
			if idx >= 0 && idx < len(col.wins) {
				return hit{kind: hitWindowTab, col: ci, tab: idx, win: col.wins[idx]}
			}
			return hit{kind: hitNothing, col: ci}
		}
		// Topmost window whose visible span covers the row.
		for _, w := range col.displayed() {
			span := col.visibleSpan(w)
			if p.Y < w.top || p.Y >= w.top+span {
				continue
			}
			if p.Y == w.top {
				return hit{kind: hitWindow, col: ci, win: w, sub: SubTag}
			}
			if p.X == col.winRect().Min.X {
				return hit{kind: hitScrollBar, col: ci, win: w}
			}
			return hit{kind: hitWindow, col: ci, win: w, sub: SubBody}
		}
		return hit{kind: hitNothing, col: ci}
	}
	return hit{kind: hitNothing}
}

// frameFor returns the laid-out frame of a subwindow (rebuilding if a
// render has not happened since layout changed).
func (w *Window) frameFor(sub int) *frame.Frame {
	if sub == SubTag {
		return w.tagFrame
	}
	return w.bodyFrame
}

// FindBody returns the screen point of the first occurrence of substr in
// w's body, if it is currently laid out on screen. Render must have run.
func (h *Help) FindBody(w *Window, substr string) (geom.Point, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.findIn(w, SubBody, substr)
}

// FindTag returns the screen point of the first occurrence of substr in
// w's tag. Render must have run.
func (h *Help) FindTag(w *Window, substr string) (geom.Point, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.findIn(w, SubTag, substr)
}

func (h *Help) findIn(w *Window, sub int, substr string) (geom.Point, bool) {
	f := w.frameFor(sub)
	if f == nil {
		return geom.Point{}, false
	}
	content := w.Buffer(sub).String()
	idx := 0
	for {
		i := indexFrom(content, substr, idx)
		if i < 0 {
			return geom.Point{}, false
		}
		off := len([]rune(content[:i]))
		if p, ok := f.PointOf(off); ok {
			return p, true
		}
		idx = i + 1
	}
}

func indexFrom(s, substr string, from int) int {
	if from > len(s) {
		return -1
	}
	i := strings.Index(s[from:], substr)
	if i < 0 {
		return -1
	}
	return from + i
}

// TabPoint returns the screen point of w's tab in its column's tower, so
// sessions can reveal covered windows with a genuine mouse click.
func (h *Help) TabPoint(w *Window) (geom.Point, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	col := h.colOf(w)
	for i, o := range col.wins {
		if o == w {
			p := geom.Pt(col.r.Min.X, col.r.Min.Y+i)
			if p.Y < col.r.Max.Y {
				return p, true
			}
			return geom.Point{}, false
		}
	}
	return geom.Point{}, false
}

// VisibleSpan reports how many screen rows w currently shows.
func (h *Help) VisibleSpan(w *Window) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.colOf(w).visibleSpan(w)
}

// BodyOrigin returns the rune offset of the first displayed body rune.
func (w *Window) BodyOrigin() int { return w.bodyOrg }

// Hidden reports whether the window is fully covered.
func (w *Window) Hidden() bool { return w.hidden }

// Top returns the window's tag row within its column.
func (w *Window) Top() int { return w.top }

// ColumnRect returns the rectangle of column ci (including its tab strip).
func (h *Help) ColumnRect(ci int) geom.Rect {
	h.mu.Lock()
	defer h.mu.Unlock()
	if ci < 0 || ci >= len(h.cols) {
		return geom.Rect{}
	}
	return h.cols[ci].r
}

// ColumnIndexOf returns the index of the column holding w.
func (h *Help) ColumnIndexOf(w *Window) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	col := h.colOf(w)
	for i, c := range h.cols {
		if c == col {
			return i
		}
	}
	return 0
}
