package core

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// Double quotes are shell metacharacters now: the quoted argument keeps
// its interior blanks, where an unquoted pair would collapse them.
func TestExternalQuotedArgs(t *testing.T) {
	h, _ := world(t)
	w, err := h.OpenFile("/usr/rob/lib/profile", "")
	if err != nil {
		t.Fatal(err)
	}
	h.Execute(w, `echo "a  b"`)
	if got := h.ErrorsText(); !strings.Contains(got, "a  b\n") {
		t.Errorf("errors = %q, want quoted blanks preserved", got)
	}
	if got := h.ErrorsText(); strings.Contains(got, `"`) {
		t.Errorf("errors = %q, quotes leaked into output", got)
	}
}

// & backgrounds a command: the enclosing script finishes while the
// backgrounded part stays live in the registry, listed and killable.
func TestExternalBackground(t *testing.T) {
	h, _ := world(t)
	w, err := h.OpenFile("/usr/rob/lib/profile", "")
	if err != nil {
		t.Fatal(err)
	}
	h.Execute(w, "sleep 30 & echo started")
	if got := h.ErrorsText(); !strings.Contains(got, "started\n") {
		t.Fatalf("errors = %q, want script output", got)
	}
	procs := h.Procs()
	found := false
	for _, p := range procs {
		if p.Name == "sleep 30" && p.State == "running" {
			found = true
		}
	}
	if !found {
		t.Fatalf("procs = %+v, want live backgrounded sleep", procs)
	}
	h.Execute(w, "Kill sleep")
	h.WaitIdle()
	if procs := h.Procs(); len(procs) != 0 {
		t.Errorf("procs after Kill = %+v", procs)
	}
	if got := h.ErrorsText(); !strings.Contains(got, "sleep 30: killed\n") {
		t.Errorf("errors = %q, want kill report", got)
	}
}

// $helpsel is a snapshot taken when the command launches: selection
// changes made while the command runs don't leak into it.
func TestHelpselSnapshotAtLaunch(t *testing.T) {
	h, _ := world(t)
	w, err := h.OpenFile("/usr/rob/src/help/help.c", "")
	if err != nil {
		t.Fatal(err)
	}
	w.SetSelection(SubBody, 1, 4)
	h.SetCurrent(w, SubBody)
	h.Start(w, "sleep 0.1; echo $helpsel")
	// Move the selection while the command is still sleeping.
	w.SetSelection(SubBody, 7, 9)
	h.WaitIdle()
	want := fmt.Sprintf("%d:1,4\n", w.ID)
	if got := h.ErrorsText(); !strings.Contains(got, want) {
		t.Errorf("errors = %q, want launch-time helpsel %q", got, want)
	}
}

// Output of a running command lands in Errors incrementally, not in one
// gulp when it exits.
func TestOutputStreamsIncrementally(t *testing.T) {
	h, _ := world(t)
	w, err := h.OpenFile("/usr/rob/lib/profile", "")
	if err != nil {
		t.Fatal(err)
	}
	h.Start(w, "echo one; sleep 30; echo two")
	waitFor(t, "first chunk", func() bool { return strings.Contains(h.ErrorsText(), "one\n") })
	if len(h.Procs()) != 1 {
		t.Fatal("command finished before the mid-stream assertion")
	}
	if got := h.ErrorsText(); strings.Contains(got, "two\n") {
		t.Fatalf("errors = %q, output was not streamed", got)
	}
	h.Execute(w, "Kill")
	h.WaitIdle()
	if got := h.ErrorsText(); strings.Contains(got, "two\n") {
		t.Errorf("errors = %q, killed command still printed", got)
	}
}

// Kill with no arguments kills everything; with an id it kills just the
// matching command.
func TestKillByID(t *testing.T) {
	h, _ := world(t)
	w, err := h.OpenFile("/usr/rob/lib/profile", "")
	if err != nil {
		t.Fatal(err)
	}
	h.Start(w, "sleep 30")
	h.Start(w, "sleep 40")
	procs := h.Procs()
	if len(procs) != 2 {
		t.Fatalf("procs = %+v", procs)
	}
	h.Execute(w, fmt.Sprintf("Kill %d", procs[0].ID))
	waitFor(t, "first kill", func() bool { return len(h.Procs()) == 1 })
	if left := h.Procs(); left[0].ID != procs[1].ID {
		t.Errorf("wrong command killed: %+v", left)
	}
	h.Execute(w, "Kill")
	h.WaitIdle()
	if left := h.Procs(); len(left) != 0 {
		t.Errorf("procs after Kill = %+v", left)
	}
}

// Exit refuses while commands run; a second Exit kills them and leaves.
func TestExitRefusesLiveCommands(t *testing.T) {
	h, _ := world(t)
	w, err := h.OpenFile("/usr/rob/lib/profile", "")
	if err != nil {
		t.Fatal(err)
	}
	h.Start(w, "sleep 30")
	h.Execute(w, "Exit")
	if h.Exited() {
		t.Fatal("Exit succeeded over a running command")
	}
	if got := h.ErrorsText(); !strings.Contains(got, "Exit: commands still running; Exit again to kill:\n\tsleep 30\n") {
		t.Errorf("errors = %q, want refusal listing the command", got)
	}
	h.Execute(w, "Exit")
	if !h.Exited() {
		t.Fatal("second Exit did not exit")
	}
	if got := h.ErrorsText(); !strings.Contains(got, "Exit: killing 1 running command(s)\n") {
		t.Errorf("errors = %q, want kill notice", got)
	}
	h.WaitIdle()
	if procs := h.Procs(); len(procs) != 0 {
		t.Errorf("procs after Exit = %+v", procs)
	}
}

// Close! kills the commands launched from the window it closes.
func TestCloseKillsWindowCommands(t *testing.T) {
	h, _ := world(t)
	w, err := h.OpenFile("/usr/rob/lib/profile", "")
	if err != nil {
		t.Fatal(err)
	}
	h.Start(w, "sleep 30")
	h.Execute(w, "Close!")
	h.WaitIdle()
	if procs := h.Procs(); len(procs) != 0 {
		t.Errorf("procs after Close! = %+v", procs)
	}
	if got := h.ErrorsText(); !strings.Contains(got, "Close!: killing sleep 30\n") {
		t.Errorf("errors = %q, want Close! kill report", got)
	}
}
