package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/geom"
	"repro/internal/journal"
	"repro/internal/shell"
	"repro/internal/userland"
	"repro/internal/vfs"
)

// fingerprint summarizes every piece of journaled session state, plus
// the rendered screen, so two sessions can be compared byte for byte.
func fingerprint(h *Help) string {
	var b strings.Builder
	h.Render()
	cw := 0
	if h.curWin != nil {
		cw = h.curWin.ID
	}
	fmt.Fprintf(&b, "cur=%d.%d snarf=%q split=%d errors=%d\n", cw, h.curSub, h.snarf, h.cols[0].r.Max.X, h.errorsID())
	for _, w := range h.Windows() {
		fmt.Fprintf(&b, "win %d col=%d top=%d hidden=%v dir=%v org=%d mod=%v sel=%v tag=%q body=%q\n",
			w.ID, h.colIndex(w.col), w.top, w.hidden, w.IsDir, w.bodyOrg,
			w.Body.Modified(), w.Sel, w.Tag.String(), w.Body.String())
	}
	b.WriteString(h.Screen().String())
	return b.String()
}

// script drives a session through the journaled entry points: opens,
// edits, cut/paste, tool output, a file write, a scroll, a close.
func script(t *testing.T, h *Help) {
	t.Helper()
	w1, err := h.OpenFile("/usr/rob/src/help/help.c", "5")
	if err != nil {
		t.Fatal(err)
	}
	h.Execute(w1, "Snarf")
	w2, err := h.OpenFile("/usr/rob/src/help/dat.h", "")
	if err != nil {
		t.Fatal(err)
	}
	w2.SetSelection(SubBody, 0, 0)
	h.SetCurrent(w2, SubBody)
	h.Execute(w2, "Paste")
	h.Execute(w2, "Pattern Text")
	h.Execute(w2, "Put!")
	h.Execute(w1, "echo recovered world")
	w3 := h.NewWindow()
	h.Execute(w3, "Text scratch contents")
	w1.Scroll(2)
	h.Execute(w1, "Snarf") // interaction so the scroll is swept
	h.Execute(w3, "Close!")
}

func attachMemJournal(t *testing.T, h *Help, every int) (*journal.MemFS, *journal.Writer) {
	t.Helper()
	fs := journal.NewMemFS()
	jw, err := journal.Open(fs, journal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h.AttachJournal(jw, every)
	return fs, jw
}

func TestJournalRecoverRoundTrip(t *testing.T) {
	h, _ := world(t)
	jfs, jw := attachMemJournal(t, h, 1<<20)
	script(t, h)
	want := fingerprint(h)
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}

	h2, _ := world(t)
	res, err := RecoverSession(h2, jfs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("recovery replayed zero ops")
	}
	if got := fingerprint(h2); got != want {
		t.Fatalf("recovered session differs:\n--- live ---\n%s\n--- recovered ---\n%s", want, got)
	}
	if h2.PanicCount() != 0 {
		t.Fatalf("recovery recovered %d panics", h2.PanicCount())
	}
	jw.Close()
}

// The recovered session must stay fully usable: more edits, more
// journal, another recovery.
func TestJournalRecoverThenContinue(t *testing.T) {
	h, _ := world(t)
	jfs, jw := attachMemJournal(t, h, 1<<20)
	script(t, h)
	jw.Flush()
	jw.Close()

	h2, _ := world(t)
	if _, err := RecoverSession(h2, jfs); err != nil {
		t.Fatal(err)
	}
	jw2, err := journal.Open(jfs, journal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h2.AttachJournal(jw2, 1<<20)
	w := h2.Windows()[0]
	h2.Execute(w, "Text after recovery")
	want := fingerprint(h2)
	jw2.Flush()
	jw2.Close()

	h3, _ := world(t)
	if _, err := RecoverSession(h3, jfs); err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(h3); got != want {
		t.Fatalf("second recovery differs:\n--- live ---\n%s\n--- recovered ---\n%s", want, got)
	}
}

// TestJournalCrashMatrix cuts the journal at every record boundary and
// one byte to each side, then recovers. The contract at every cut:
// recovery either succeeds with a prefix-consistent world (invariants
// hold) or reports a clean error — it never panics, and a torn tail is
// never replayed as data.
func TestJournalCrashMatrix(t *testing.T) {
	h, _ := world(t)
	jfs, jw := attachMemJournal(t, h, 1<<20)
	script(t, h)
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	jw.Close()

	segName := ""
	for _, name := range mustList(t, jfs) {
		if strings.HasPrefix(name, "wal-") {
			segName = name
		}
	}
	if segName == "" {
		t.Fatal("no segment written")
	}
	seg, err := jfs.ReadFile(segName)
	if err != nil {
		t.Fatal(err)
	}
	ends := journal.RecordEnds(seg)
	if len(ends) < 10 {
		t.Fatalf("only %d record boundaries; script too small for a matrix", len(ends))
	}

	cuts := map[int]bool{}
	for _, e := range ends {
		for _, d := range []int{-1, 0, 1} {
			if n := e + d; n >= 0 && n <= len(seg) {
				cuts[n] = true
			}
		}
	}
	for n := range cuts {
		cut := jfs.Clone()
		cut.WriteFile(segName, seg[:n])
		h2, _ := world(t)
		res, err := RecoverSession(h2, cut)
		if err != nil {
			t.Fatalf("cut at %d: %v", n, err)
		}
		if h2.PanicCount() != 0 {
			t.Fatalf("cut at %d: %d recovered panics", n, h2.PanicCount())
		}
		// Prefix consistency: the number of replayed ops equals the
		// number of whole records below the cut.
		want := 0
		for _, e := range ends {
			if e <= n && e > 16 {
				want++
			}
		}
		if res.Ops != want {
			t.Fatalf("cut at %d: replayed %d ops, want %d", n, res.Ops, want)
		}
		checkInvariants(t, h2)
	}
}

func mustList(t *testing.T, fs *journal.MemFS) []string {
	t.Helper()
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	return names
}

// With an aggressive checkpoint cadence the journal compacts mid-script
// and recovery goes through checkpoint + short tail instead of the full
// op history. The result must be identical anyway.
func TestJournalCheckpointCadence(t *testing.T) {
	h, _ := world(t)
	jfs, jw := attachMemJournal(t, h, 4)
	script(t, h)
	want := fingerprint(h)
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	jw.Close()

	var segs int
	ckpt := false
	for _, name := range mustList(t, jfs) {
		if strings.HasPrefix(name, "wal-") {
			segs++
		}
		if name == "checkpoint" {
			ckpt = true
		}
	}
	if !ckpt {
		t.Fatal("no checkpoint written")
	}
	if segs > 1 {
		t.Fatalf("%d segments after compaction", segs)
	}

	h2, _ := world(t)
	res, err := RecoverSession(h2, jfs)
	if err != nil {
		t.Fatal(err)
	}
	if res.CkptGen == 0 {
		t.Fatal("recovery used the initial checkpoint; cadence never fired")
	}
	if got := fingerprint(h2); got != want {
		t.Fatalf("recovered session differs:\n--- live ---\n%s\n--- recovered ---\n%s", want, got)
	}
}

// A corrupt mid-journal flip must surface as an error from recovery,
// not a half-replayed session.
func TestJournalRecoverCorrupt(t *testing.T) {
	h, _ := world(t)
	jfs, jw := attachMemJournal(t, h, 1<<20)
	script(t, h)
	jw.Flush()
	jw.Close()

	segName := ""
	for _, name := range mustList(t, jfs) {
		if strings.HasPrefix(name, "wal-") {
			segName = name
		}
	}
	seg, _ := jfs.ReadFile(segName)
	ends := journal.RecordEnds(seg)
	seg[ends[1]+8] ^= 0xff // inside the second record's payload
	jfs.WriteFile(segName, seg)

	h2, _ := world(t)
	if _, err := RecoverSession(h2, jfs); err == nil {
		t.Fatal("corrupt journal recovered cleanly")
	}
}

// RecoverSession must refuse to run on a session that is already
// journaling (replay would be re-recorded).
func TestRecoverAfterAttachRefused(t *testing.T) {
	h, _ := world(t)
	jfs, jw := attachMemJournal(t, h, 1<<20)
	defer jw.Close()
	if _, err := RecoverSession(h, jfs); err == nil {
		t.Fatal("RecoverSession allowed after AttachJournal")
	}
}

func TestRecoverScreenMismatch(t *testing.T) {
	h, _ := world(t)
	jfs, jw := attachMemJournal(t, h, 1<<20)
	jw.Flush()
	jw.Close()

	fs2 := vfs.New()
	sh2 := shell.New(fs2)
	userland.Install(sh2)
	h2 := New(fs2, sh2, 100, 30)
	if _, err := RecoverSession(h2, jfs); err == nil {
		t.Fatal("recovered onto a differently sized screen")
	}
}

// A panic inside a command becomes a recovered fault: counted, reported
// in Errors, crash report written next to the journal — and the session
// keeps working.
func TestExecutePanicRecovered(t *testing.T) {
	h, _ := world(t)
	jfs, jw := attachMemJournal(t, h, 1<<20)
	defer jw.Close()

	h.Shell.Register("boom", func(ctx *shell.Context, args []string) int { panic("kaboom") })
	w, err := h.OpenFile("/usr/rob/src/help/help.c", "")
	if err != nil {
		t.Fatal(err)
	}
	h.Execute(w, "boom")

	if h.PanicCount() != 1 {
		t.Fatalf("PanicCount = %d, want 1", h.PanicCount())
	}
	errs := h.Errors().Body.String()
	if !strings.Contains(errs, "recovered panic") || !strings.Contains(errs, "kaboom") {
		t.Fatalf("Errors window: %q", errs)
	}
	if !strings.Contains(errs, "crash-001.txt") {
		t.Fatalf("Errors window does not name the crash report: %q", errs)
	}
	report, err := jfs.ReadFile("crash-001.txt")
	if err != nil {
		t.Fatalf("crash report: %v", err)
	}
	if !strings.Contains(string(report), "kaboom") || !strings.Contains(string(report), "goroutine") {
		t.Fatalf("crash report lacks panic value or stack:\n%s", report)
	}

	// Still alive, still journaling: the whole episode recovers.
	h.Execute(w, "Snarf")
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	h2, _ := world(t)
	if _, err := RecoverSession(h2, jfs); err != nil {
		t.Fatal(err)
	}
	if got := h2.Errors().Body.String(); !strings.Contains(got, "recovered panic") {
		t.Fatalf("recovered session lost the fault report: %q", got)
	}
}

// The same guard covers the raw event loop: a panic fired from deep
// inside a keystroke (here, a poisoned splice hook) must not escape
// Handle.
func TestHandlePanicRecovered(t *testing.T) {
	h, _ := world(t)
	w, err := h.OpenFile("/usr/rob/src/help/help.c", "")
	if err != nil {
		t.Fatal(err)
	}
	h.Render()
	var pt geom.Point
	found := false
	for y := 0; y < 24 && !found; y++ {
		for x := 0; x < 80 && !found; x++ {
			ht := h.hitTest(geom.Pt(x, y))
			if ht.kind == hitWindow && ht.win == w && ht.sub == SubBody {
				pt, found = geom.Pt(x, y), true
			}
		}
	}
	if !found {
		t.Fatal("window body not on screen")
	}
	w.Body.SetOnSplice(func(off, ndel int, ins string) { panic("poisoned hook") })

	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic escaped Handle: %v", r)
			}
		}()
		h.Handle(event.MouseEvent(event.Mouse{Pt: pt}))
		h.Handle(event.KbdEvent('x'))
	}()
	if h.PanicCount() != 1 {
		t.Fatalf("PanicCount = %d, want 1", h.PanicCount())
	}
	if !strings.Contains(h.Errors().Body.String(), "recovered panic") {
		t.Fatalf("Errors window: %q", h.Errors().Body.String())
	}
}
