package core

import (
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/geom"
)

// Edge cases of execution semantics and gestures not covered elsewhere.

func TestWriteWithExplicitName(t *testing.T) {
	h, fs := world2(t)
	w := h.NewWindow()
	w.Body.SetString("exported content\n")
	h.SetCurrent(w, SubBody)
	h.Execute(w, "Write /tmp/exported")
	data, err := fs.ReadFile("/tmp/exported")
	if err != nil || string(data) != "exported content\n" {
		t.Errorf("file=%q err=%v (errors %q)", data, err, h.Errors().Body.String())
	}
	// The window adopts the name.
	if w.FileName() != "/tmp/exported" {
		t.Errorf("name = %q", w.FileName())
	}
}

func TestWriteRelativeName(t *testing.T) {
	h, fs := world2(t)
	w, _ := h.OpenFile("/usr/rob/src/help/help.c", "")
	h.SetCurrent(w, SubBody)
	h.Execute(w, "Write copy.c")
	if !fs.Exists("/usr/rob/src/help/copy.c") {
		t.Errorf("relative Write failed; errors %q", h.Errors().Body.String())
	}
}

func TestWriteNoName(t *testing.T) {
	h, _ := world2(t)
	w := h.NewWindow()
	h.SetCurrent(w, SubBody)
	h.Execute(w, "Write")
	if !strings.Contains(h.Errors().Body.String(), "Write:") {
		t.Errorf("errors = %q", h.Errors().Body.String())
	}
}

func TestOpenMultipleArguments(t *testing.T) {
	h, _ := world2(t)
	w := h.NewWindow()
	h.Execute(w, "Open /usr/rob/src/help/dat.h /usr/rob/src/help/help.c")
	if h.WindowByName("/usr/rob/src/help/dat.h") == nil ||
		h.WindowByName("/usr/rob/src/help/help.c") == nil {
		t.Error("both files should open")
	}
}

func TestOpenPatternAddress(t *testing.T) {
	h, _ := world2(t)
	w := h.NewWindow()
	h.Execute(w, "Open /usr/rob/src/help/help.c:/main/")
	opened := h.WindowByName("/usr/rob/src/help/help.c")
	if opened == nil {
		t.Fatalf("errors: %q", h.Errors().Body.String())
	}
	if got := opened.SelectedText(SubBody); got != "main" {
		t.Errorf("selected %q", got)
	}
}

func TestOpenCharAddress(t *testing.T) {
	h, _ := world2(t)
	w := h.NewWindow()
	h.Execute(w, "Open /usr/rob/src/help/dat.h:#10")
	opened := h.WindowByName("/usr/rob/src/help/dat.h")
	if opened == nil {
		t.Fatal("window missing")
	}
	if opened.Sel[SubBody].Q0 != 10 {
		t.Errorf("selection at %d", opened.Sel[SubBody].Q0)
	}
}

func TestSnarfEmptySelectionKeepsBuffer(t *testing.T) {
	h, _ := world2(t)
	w := h.NewWindow()
	w.Body.SetString("keepable")
	w.SetSelection(SubBody, 0, 4)
	h.SetCurrent(w, SubBody)
	h.SnarfSel()
	if h.Snarf() != "keep" {
		t.Fatalf("snarf = %q", h.Snarf())
	}
	// Empty selection: the buffer is untouched.
	w.SetSelection(SubBody, 2, 2)
	h.SnarfSel()
	if h.Snarf() != "keep" {
		t.Errorf("snarf clobbered: %q", h.Snarf())
	}
}

func TestCutWithoutCurrentWindow(t *testing.T) {
	h, _ := world2(t)
	// No current selection anywhere: Cut/Paste/Snarf are no-ops.
	h.Cut()
	h.Paste()
	h.SnarfSel()
	if len(h.Windows()) != 0 {
		t.Error("no-op editing created windows")
	}
}

func TestPatternNoCurrentWindow(t *testing.T) {
	h, _ := world2(t)
	w := h.NewWindow()
	h.SetCurrent(nil, SubBody)
	h.Execute(w, "Pattern xyz")
	if !strings.Contains(h.Errors().Body.String(), "Pattern:") {
		t.Errorf("errors = %q", h.Errors().Body.String())
	}
}

func TestPatternUsesSnarfAsDefault(t *testing.T) {
	h, _ := world2(t)
	w := h.NewWindow()
	w.Body.SetString("find the needle here")
	w.SetSelection(SubBody, 0, 6)
	h.SetCurrent(w, SubBody)
	h.SnarfSel() // snarf = "find t"
	w.SetSelection(SubBody, 8, 8)
	h.Execute(w, "Pattern")
	if got := w.SelectedText(SubBody); got != "find t" {
		t.Errorf("selected %q", got)
	}
}

func TestGestureOutsideWindows(t *testing.T) {
	h, _ := world2(t)
	h.Render()
	// Clicks in the void and keys with no window under the mouse are
	// harmless.
	h.HandleAll(event.Click(event.Left, geom.Pt(30, 20)))
	h.HandleAll(event.Type("x"))
	if h.Metrics().Keystrokes != 1 {
		t.Errorf("keystrokes = %d", h.Metrics().Keystrokes)
	}
	if len(h.Windows()) != 0 {
		t.Error("void interaction created windows")
	}
}

func TestRightClickInBodyIsNoop(t *testing.T) {
	h, _ := world2(t)
	w, _ := h.OpenFile("/usr/rob/src/help/dat.h", "")
	top := w.Top()
	h.Render()
	p, _ := h.FindBody(w, "typedef")
	h.HandleAll(event.Click(event.Right, p))
	if w.Top() != top {
		t.Error("right click in body moved the window")
	}
}

func TestTypingScrollsToFollowCursor(t *testing.T) {
	h, _ := world2(t)
	fsWrite(t, h, "/long", strings.Repeat("line\n", 100))
	w, _ := h.OpenFile("/long", "")
	h.Render()
	// Put the insertion point at the very end (off screen) and type: the
	// window must scroll to keep it visible.
	w.SetSelection(SubBody, w.Body.Len(), w.Body.Len())
	h.SetCurrent(w, SubBody)
	p, _ := h.FindBody(w, "line") // mouse over the window
	h.HandleAll(event.Click(event.Left, p))
	w.SetSelection(SubBody, w.Body.Len(), w.Body.Len())
	h.HandleAll(event.Type("z"))
	h.Render()
	f := w.frameFor(SubBody)
	if f == nil || !f.Visible(w.Sel[SubBody].Q0) {
		t.Error("cursor scrolled out of view while typing")
	}
}

func TestExecuteEmptyAndBlank(t *testing.T) {
	h, _ := world2(t)
	w := h.NewWindow()
	before := h.Metrics().Commands
	h.Execute(w, "")
	h.Execute(w, "   \t  ")
	if h.Metrics().Commands != before {
		t.Error("blank commands should not count")
	}
}

func TestMiddleClickInEmptySpaceExecutesNothing(t *testing.T) {
	h, _ := world2(t)
	w := h.NewWindow()
	w.Body.SetString("word")
	h.Render()
	f := w.frameFor(SubBody)
	r := f.Rect()
	// Click far below the text inside the body.
	p := geom.Pt(r.Min.X+2, r.Max.Y-1)
	before := len(h.Windows())
	h.HandleAll(event.Click(event.Middle, p))
	// Expansion at end-of-text may pick up "word" — acceptable — but no
	// crash and at most an Errors window appears.
	if len(h.Windows()) > before+1 {
		t.Error("unexpected windows created")
	}
}

func TestWindowsOrderStable(t *testing.T) {
	h, _ := world2(t)
	a := h.NewWindow()
	b := h.NewWindow()
	c := h.NewWindow()
	ws := h.Windows()
	if ws[0] != a || ws[1] != b || ws[2] != c {
		t.Error("Windows not ordered by id")
	}
	h.CloseWindow(b)
	ws = h.Windows()
	if len(ws) != 2 || ws[0] != a || ws[1] != c {
		t.Error("order broken after close")
	}
}

func TestPointOfSelection(t *testing.T) {
	h, _ := world2(t)
	w := h.NewWindow()
	w.Body.SetString("anchor text")
	w.SetSelection(SubBody, 7, 7)
	h.SetCurrent(w, SubBody)
	h.Render()
	p, ok := h.PointOfSelection()
	if !ok {
		t.Fatal("selection point not found")
	}
	if off := w.frameFor(SubBody).OffsetOf(p); off != 7 {
		t.Errorf("selection point maps to offset %d", off)
	}
	// Without a current window there is no point.
	h.SetCurrent(nil, SubBody)
	if _, ok := h.PointOfSelection(); ok {
		t.Error("nil current should have no selection point")
	}
}

func TestNavigateDirectoriesByPointing(t *testing.T) {
	// Opening a directory lists it; pointing at a subdirectory entry and
	// executing Open descends — the pleasant consequence of the
	// directory-window rules the paper calls "an elegant use".
	h, fs := world2(t)
	fs.MkdirAll("/usr/rob/src/help/sub")
	fs.WriteFile("/usr/rob/src/help/sub/inner.c", []byte("int inner;\n"))
	dirWin, err := h.OpenFile("/usr/rob/src", "")
	if err != nil {
		t.Fatal(err)
	}
	// Point at "help/" in the listing and Open.
	body := dirWin.Body.String()
	off := strings.Index(body, "help/")
	dirWin.SetSelection(SubBody, off+1, off+1)
	h.SetCurrent(dirWin, SubBody)
	h.Execute(dirWin, "Open")
	helpDir := h.WindowByName("/usr/rob/src/help/")
	if helpDir == nil {
		t.Fatalf("subdirectory not opened; errors: %q", h.Errors().Body.String())
	}
	// And again one level deeper.
	body = helpDir.Body.String()
	off = strings.Index(body, "sub/")
	helpDir.SetSelection(SubBody, off+1, off+1)
	h.SetCurrent(helpDir, SubBody)
	h.Execute(helpDir, "Open")
	if h.WindowByName("/usr/rob/src/help/sub/") == nil {
		t.Errorf("nested subdirectory not opened; errors: %q", h.Errors().Body.String())
	}
	// Finally a file from the deepest listing.
	subWin := h.WindowByName("/usr/rob/src/help/sub/")
	body = subWin.Body.String()
	off = strings.Index(body, "inner.c")
	subWin.SetSelection(SubBody, off+1, off+1)
	h.SetCurrent(subWin, SubBody)
	h.Execute(subWin, "Open")
	if h.WindowByName("/usr/rob/src/help/sub/inner.c") == nil {
		t.Errorf("file in subdirectory not opened; errors: %q", h.Errors().Body.String())
	}
}

func TestOpenRevealsExistingWindow(t *testing.T) {
	// "If the file is already open, the command just guarantees that its
	// window is visible."
	h, fs := world2(t)
	fs.WriteFile("/a", []byte(strings.Repeat("a\n", 30)))
	fs.WriteFile("/b", []byte(strings.Repeat("b\n", 30)))
	a, _ := h.OpenFile("/a", "")
	h.SetCurrent(a, SubBody)
	b, _ := h.OpenFile("/b", "")
	h.Reveal(b) // covers a entirely
	h.MoveWindow(b, geom.Pt(3, a.Top()))
	if h.VisibleSpan(a) > 0 {
		// Force the covered state if the move did not.
		h.Reveal(b)
	}
	again, err := h.OpenFile("/a", "")
	if err != nil || again != a {
		t.Fatalf("reopen = %v, %v", again, err)
	}
	if h.VisibleSpan(a) < 1 {
		t.Error("reopening did not make the window visible")
	}
}
