package core

import (
	"strconv"
	"strings"

	"repro/internal/notify"
	"repro/internal/shell"
)

// This file threads the notify bus through the session. Emission sites
// mirror the journal's: discrete transitions (window create/close,
// command execution, faults via the obs sink) publish where they
// happen, while text changes are announced by a sweep that compares
// buffer generations at the end of each top-level interaction — the
// same choke points JournalSweep runs at — so typing, Cut, Paste,
// Undo, Get!, and file-interface writes all produce the same "body"
// (or "tag") event, coalesced per interaction rather than per rune.

// winID is the window id used for event attribution, 0 when there is
// no window context.
func winID(w *Window) int {
	if w == nil {
		return 0
	}
	return w.ID
}

// notifySweep publishes a body/tag event for every window whose buffer
// generation moved since the last sweep. Runs under the actor lock; it
// is O(windows) with two integer compares each, cheap enough to leave
// on unconditionally. The published generation is in vfs gen space
// (text gen + 1, matching what /mnt/help/<n>/body reports through
// Stat), so a remote cache can compare it against its own entries.
func (h *Help) notifySweep() {
	b := h.Notify
	if b == nil {
		return
	}
	// Formatting the generation costs an allocation per event; while
	// nobody has ever listened (b.Armed), publish the bare skeleton
	// instead — resume still works, and a consumer that later backfills
	// a detail-less body event must treat the generation as unknown
	// (assume stale). This keeps the append hot path at its pre-notify
	// alloc count for the common session no one watches.
	armed := b.Armed()
	genDetail := func(g uint64) string {
		if !armed {
			return ""
		}
		return string(strconv.AppendUint([]byte("gen "), g+1, 10))
	}
	for _, w := range h.byID {
		if g := w.Body.Gen(); g != w.notifiedBody {
			w.notifiedBody = g
			b.Publish(w.ID, "body", genDetail(g))
		}
		if g := w.Tag.Gen(); g != w.notifiedTag {
			w.notifiedTag = g
			b.Publish(w.ID, "tag", genDetail(g))
		}
	}
}

// watchCmd implements the Watch built-in: `Watch cmd args...` runs the
// command once, then again every time this window's body changes. The
// watcher registers as a managed proc — it lists in /mnt/help/procs and
// dies to Kill, Close!, and Exit like any command — and parks on a bus
// subscription between runs, so an idle watcher costs nothing: no
// polling, the inversion this subsystem exists for. It exits when the
// window closes. A command that modifies the body it watches will, of
// course, retrigger itself; that hazard is the user's to aim.
func (h *Help) watchCmd(w *Window, cmd string) {
	cmd = strings.TrimSpace(cmd)
	if w == nil || h.byID[w.ID] != w {
		h.appendErrors("Watch: no window\n")
		return
	}
	if cmd == "" {
		h.appendErrors("Watch: usage: Watch command ...\n")
		return
	}
	sub := h.Notify.Subscribe(w.ID, 0, 0)
	out := procWriter{h}
	ctx := h.Shell.NewContext(out, out)
	ctx.FS = h.safeFS
	ctx.Dir = w.Dir()
	h.setHelpsel(ctx)
	ctx.Kill = &shell.KillFlag{}
	ctx.Spawn = h.spawnBg
	p := h.startProc("Watch "+cmd, w.ID, ctx, func(c *shell.Context) int {
		defer sub.Close()
		status := h.Shell.Run(c, cmd)
		for {
			ev, err := sub.Next(nil, 0)
			if err != nil || c.Kill.Killed() {
				return status
			}
			rerun := false
			for {
				switch ev.Kind {
				case "del":
					return status
				case "body", notify.KindGap:
					rerun = true
				}
				var ok bool
				if ev, ok = sub.TryNext(); !ok {
					break
				}
			}
			if rerun {
				status = h.Shell.Run(c, cmd)
				// Coalesce: changes that landed while the command ran
				// (including its own writes to the window, minus tag
				// noise) shouldn't queue a storm of reruns. Events are
				// drained, not acted on — except close, which still exits.
				for {
					ev, ok := sub.TryNext()
					if !ok {
						break
					}
					if ev.Kind == "del" {
						return status
					}
				}
			}
		}
	})
	if p != nil {
		// Kill must unblock a watcher parked between runs, not just set
		// the flag it would never wake to check.
		p.onKill = sub.Close
	} else {
		// startProc refused (proc limit): the run fn never executes, so
		// its deferred Close never will either — close here or the
		// subscription sits in the bus forever, absorbing every publish.
		sub.Close()
	}
}
