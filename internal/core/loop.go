package core

import (
	"runtime"
	"time"
)

// The apply queue.
//
// Command goroutines never touch Help state directly: they enqueue
// closures here, and a lazily started drainer applies them under the
// actor lock in FIFO order. The drainer exits as soon as the queue is
// empty, so an idle session has no background goroutine — tests that
// assert goroutine quiescence keep passing — and a busy one batches
// many mutations under a single lock acquisition.

// enqueue adds a mutation to the apply queue and makes sure a drainer is
// running. Must NOT be called while holding h.mu: the channel send could
// block on a full queue whose drainer is waiting for the lock.
func (h *Help) enqueue(fn func()) {
	h.applyq <- fn
	if h.loopActive.CompareAndSwap(0, 1) {
		go h.drain()
	}
}

// drain applies queued mutations in batches: take the lock, apply
// everything currently queued, sweep the journal once for the batch,
// release. When the queue stays empty it parks (returns); enqueue
// restarts it.
func (h *Help) drain() {
	for {
		h.mu.Lock()
		n := 0
	batch:
		for {
			select {
			case fn := <-h.applyq:
				fn()
				n++
			default:
				break batch
			}
		}
		if n > 0 {
			h.JournalSweep()
			if h.ins.on {
				h.ins.applied.Add(int64(n))
			}
		}
		h.mu.Unlock()
		h.loopActive.Store(0)
		// Recheck after going idle: a send that lost the CAS race relies
		// on this drainer picking its item up before exiting.
		if len(h.applyq) == 0 {
			return
		}
		if !h.loopActive.CompareAndSwap(0, 1) {
			return
		}
	}
}

// flushQueue waits until every mutation enqueued before the call has
// been applied, by riding a marker closure through the queue.
func (h *Help) flushQueue() {
	done := make(chan struct{})
	h.enqueue(func() { close(done) })
	<-done
}

// Apply runs fn on the apply queue — under the actor lock, in FIFO order
// with command output — and returns without waiting for it. Exposed for
// tools and benchmarks that need serialized access to core state.
func (h *Help) Apply(fn func()) { h.enqueue(fn) }

// WaitIdle blocks until the session is quiescent: no live external
// commands and an empty apply queue. Deterministic tests and session
// snapshots call it so that everything a command was going to say has
// landed in Errors before state is examined.
func (h *Help) WaitIdle() {
	for {
		h.mu.Lock()
		for len(h.procs) > 0 {
			h.procIdle.Wait()
		}
		h.mu.Unlock()
		h.flushQueue()
		h.mu.Lock()
		idle := len(h.procs) == 0 && len(h.applyq) == 0
		h.mu.Unlock()
		if idle && h.loopActive.Load() == 0 {
			return
		}
		runtime.Gosched()
	}
}

// WaitIdleFor is WaitIdle with a deadline, for interactive callers (the
// repl) that must not hang forever behind a runaway command. It reports
// whether the session went idle within d.
func (h *Help) WaitIdleFor(d time.Duration) bool {
	deadline := time.Now().Add(d)
	for {
		h.mu.Lock()
		live := len(h.procs)
		h.mu.Unlock()
		if live == 0 {
			h.flushQueue()
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}
