package core

import (
	"repro/internal/event"
	"repro/internal/geom"
)

// Handle feeds one raw input event to help. Mouse states accumulate into
// gestures; each completed gesture is dispatched. Keyboard runes type into
// the subwindow under the mouse ("typed text replaces the selection in the
// subwindow under the mouse"; "typing does not execute commands: newline
// is just a character").
func (h *Help) Handle(e event.Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.handle(e)
}

func (h *Help) handle(e event.Event) {
	if h.exited.Load() {
		return
	}
	// Panic recovery before the journal sweep (defers run last-first):
	// a panic mid-gesture is caught, reported, and then whatever state
	// the event did reach is still swept into the journal.
	defer h.JournalSweep()
	defer h.recoverPanic("event loop")
	if e.Kbd != nil {
		h.typeRune(e.Kbd.R)
		return
	}
	if e.Mouse == nil {
		return
	}
	h.mousePt = e.Mouse.Pt
	g, done := h.machine.Put(*e.Mouse)
	// Mirror the machine's event-loop-owned tallies into atomics so
	// Metrics() stays consistent from other goroutines.
	h.mPresses.Store(int64(h.machine.Presses))
	h.mTravel.Store(int64(h.machine.Travel))
	if done {
		h.sweepExec = nil
		h.dispatch(g)
		return
	}
	h.trackExecSweep()
}

// trackExecSweep records the range of an in-progress middle-button sweep
// so Render can underline it — "the text being selected for execution is
// underlined" (Figure 2).
func (h *Help) trackExecSweep() {
	g, ok := h.machine.Current()
	if !ok || g.Button != event.Middle {
		h.sweepExec = nil
		return
	}
	h.render() // frames must be current to translate the sweep
	ht := h.hitTest(g.Start)
	if ht.kind != hitWindow {
		h.sweepExec = nil
		return
	}
	f := ht.win.frameFor(ht.sub)
	if f == nil {
		h.sweepExec = nil
		return
	}
	q0 := f.OffsetOf(g.Start)
	q1 := f.OffsetOf(g.End)
	if q1 < q0 {
		q0, q1 = q1, q0
	}
	h.sweepExec = &execSweep{win: ht.win, sub: ht.sub, q0: q0, q1: q1}
}

// HandleAll feeds a batch of events.
func (h *Help) HandleAll(evs []event.Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, e := range evs {
		h.handle(e)
	}
}

// Run drains an event stream until it is empty or Exit executes, rendering
// once at the end.
func (h *Help) Run(s *event.Stream) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		e, ok := s.Next()
		if !ok || h.exited.Load() {
			break
		}
		h.handle(e)
	}
	h.render()
}

// dispatch interprets one completed gesture.
func (h *Help) dispatch(g event.Gesture) {
	h.ins.gestures.Inc()
	if h.ins.on && h.ins.sampleGesture() {
		sp := h.Obs.StartSpan("gesture", event.ButtonName(g.Button))
		defer func() { h.ins.gestureHist.Observe(sp.End()) }()
	}
	// Frames must reflect current layout before translating the mouse.
	h.render()
	ht := h.hitTest(g.Start)
	switch ht.kind {
	case hitColumnTab:
		if g.Button == event.Left {
			h.expandColumn(ht.col)
		}
	case hitWindowTab:
		if g.Button == event.Left {
			h.reveal(ht.win)
		}
	case hitScrollBar:
		h.scrollGesture(ht.win, g)
	case hitWindow:
		h.windowGesture(ht, g)
	}
	h.render()
}

// scrollGesture interprets a click in a window's scroll bar: the left
// button scrolls back, the right button scrolls forward — each by the
// number of rows between the top of the bar and the click, so clicking
// low moves far — and the middle button jumps to the proportional
// position in the file.
func (h *Help) scrollGesture(w *Window, g event.Gesture) {
	rows := g.Start.Y - (w.top + 1) + 1
	if rows < 1 {
		rows = 1
	}
	switch g.Button {
	case event.Left:
		w.Scroll(-rows)
	case event.Right:
		w.Scroll(+rows)
	case event.Middle:
		span := h.colOf(w).visibleSpan(w) - 1
		if span < 1 {
			span = 1
		}
		frac := float64(rows-1) / float64(span)
		target := int(frac * float64(w.Body.NLines()))
		if target < 1 {
			target = 1
		}
		w.bodyOrg = w.Body.LineStart(target)
	}
}

// windowGesture handles gestures that begin over a window's tag or body.
func (h *Help) windowGesture(ht hit, g event.Gesture) {
	w, sub := ht.win, ht.sub
	f := w.frameFor(sub)
	if f == nil {
		return
	}
	switch g.Button {
	case event.Left:
		q0 := f.OffsetOf(g.Start)
		q1 := f.OffsetOf(g.End)
		w.SetSelection(sub, q0, q1)
		h.setCurrent(w, sub)
		// Chorded editing: middle executes Cut, right executes Paste,
		// in the order clicked ("one may even click the middle and then
		// right buttons, while holding the left down, to execute a
		// cut-and-paste").
		for _, c := range g.Chords {
			switch c.Button {
			case event.Middle:
				h.cut()
			case event.Right:
				h.paste()
			}
		}
	case event.Middle:
		q0 := f.OffsetOf(g.Start)
		q1 := f.OffsetOf(g.End)
		if q1 < q0 {
			q0, q1 = q1, q0
		}
		// Asynchronous: the gesture launches the command and the event
		// loop moves on; output streams into Errors as it arrives.
		h.executeAt(w, sub, q0, q1)
	case event.Right:
		if sub == SubTag {
			h.moveWindow(w, g.End)
		}
	}
}

// typeRune types one rune into the subwindow under the mouse. Backspace
// (BS or DEL) deletes the selection, or the rune before a null selection.
func (h *Help) typeRune(r rune) {
	h.mKeystrokes.Inc()
	h.render()
	ht := h.hitTest(h.mousePt)
	if ht.kind != hitWindow {
		return
	}
	w, sub := ht.win, ht.sub
	buf := w.Buffer(sub)
	sel := w.Sel[sub]
	if r == '\b' || r == 0x7f {
		if !sel.Empty() {
			buf.Delete(sel.Q0, sel.Q1-sel.Q0)
			w.Sel[sub] = Selection{sel.Q0, sel.Q0}
		} else if sel.Q0 > 0 {
			buf.Delete(sel.Q0-1, 1)
			w.Sel[sub] = Selection{sel.Q0 - 1, sel.Q0 - 1}
		}
	} else {
		if !sel.Empty() {
			buf.Delete(sel.Q0, sel.Q1-sel.Q0)
		}
		buf.Insert(sel.Q0, string(r))
		w.Sel[sub] = Selection{sel.Q0 + 1, sel.Q0 + 1}
	}
	h.setCurrent(w, sub)
	if sub == SubBody && !w.IsDir {
		w.RefreshTag()
	}
	h.keepVisible(w, sub)
}

// keepVisible scrolls so the subwindow's selection stays on screen while
// typing runs past the bottom.
func (h *Help) keepVisible(w *Window, sub int) {
	if sub != SubBody {
		return
	}
	f := w.frameFor(SubBody)
	if f == nil {
		return
	}
	q := w.Sel[SubBody].Q0
	if q < f.Org() || q > f.MaxOff() {
		w.scrollTo(q)
	}
}

// Cut deletes the current selection into the snarf buffer.
func (h *Help) Cut() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.cut()
}

func (h *Help) cut() {
	w, sub := h.curWin, h.curSub
	if w == nil {
		return
	}
	sel := w.Sel[sub]
	if sel.Empty() {
		return
	}
	buf := w.Buffer(sub)
	buf.Commit()
	h.snarf = buf.Delete(sel.Q0, sel.Q1-sel.Q0)
	buf.Commit()
	w.Sel[sub] = Selection{sel.Q0, sel.Q0}
	if sub == SubBody && !w.IsDir {
		w.RefreshTag()
	}
}

// SnarfSel copies the current selection into the snarf buffer without
// deleting ("the cut text is remembered in a buffer").
func (h *Help) SnarfSel() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.snarfSel()
}

func (h *Help) snarfSel() {
	w, sub := h.curWin, h.curSub
	if w == nil {
		return
	}
	sel := w.Sel[sub]
	if sel.Empty() {
		return
	}
	h.snarf = w.Buffer(sub).Slice(sel.Q0, sel.Q1-sel.Q0)
}

// Paste replaces the current selection with the snarf buffer and leaves
// the pasted text selected.
func (h *Help) Paste() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.paste()
}

func (h *Help) paste() {
	w, sub := h.curWin, h.curSub
	if w == nil {
		return
	}
	sel := w.Sel[sub]
	buf := w.Buffer(sub)
	buf.Commit()
	if !sel.Empty() {
		buf.Delete(sel.Q0, sel.Q1-sel.Q0)
	}
	buf.Insert(sel.Q0, h.snarf)
	buf.Commit()
	w.Sel[sub] = Selection{sel.Q0, sel.Q0 + len([]rune(h.snarf))}
	if sub == SubBody && !w.IsDir {
		w.RefreshTag()
	}
}

// PointOfSelection returns the screen position of the current selection's
// start, used by the file interface to place new windows "near the
// current selected text".
func (h *Help) PointOfSelection() (geom.Point, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.pointOfSelection()
}

func (h *Help) pointOfSelection() (geom.Point, bool) {
	w, sub := h.curWin, h.curSub
	if w == nil {
		return geom.Point{}, false
	}
	f := w.frameFor(sub)
	if f == nil {
		return geom.Point{}, false
	}
	return f.PointOf(w.Sel[sub].Q0)
}
