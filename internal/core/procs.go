package core

import (
	"fmt"
	"runtime/debug"
	"sort"
	"strconv"
	"time"

	"repro/internal/shell"
)

// proc is one live external command: a goroutine running a shell script
// or program, streaming its output into Errors through the apply queue.
type proc struct {
	id    int
	name  string // the command's source text, for listings
	winID int    // window the command was executed in; 0 if none
	start time.Time
	kill  *shell.KillFlag
	done  chan struct{} // closed when the reap has been applied

	// killed is set under the actor lock when Kill selects this command,
	// so the reap can report the termination in Errors.
	killed bool

	// onKill, when set, runs right after the kill flag is raised, still
	// under the actor lock. It exists for commands that park on
	// something other than the flag (the Watch built-in blocks on a
	// notify subscription): it must wake them so they see the flag. It
	// must not block and must be safe to call more than once.
	onKill func()
}

// stopProc raises p's kill flag and wakes it. Runs under the actor lock.
func stopProc(p *proc) {
	p.kill.Kill()
	p.killed = true
	if p.onKill != nil {
		p.onKill()
	}
}

// ProcInfo is the external description of a live command, served through
// /mnt/help/procs and the repl's procs command.
type ProcInfo struct {
	ID      int
	Name    string
	WinID   int
	Runtime time.Duration
	State   string // "running" or "killed"
}

// procWriter streams a command's output into the Errors window: each
// Write becomes one enqueued mutation, so output appears incrementally
// while the command runs instead of all at once when it exits.
type procWriter struct{ h *Help }

func (w procWriter) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	chunk := string(p) // copy: the caller may reuse p
	w.h.enqueue(func() { w.h.appendErrors(chunk) })
	return len(p), nil
}

// startProc registers a command in the process table and launches its
// goroutine. Called with the actor lock held; ctx must be fully prepared
// (helpsel snapshot taken, serialized namespace view, kill flag and
// streams attached).
func (h *Help) startProc(name string, winID int, ctx *shell.Context, run func(*shell.Context) int) *proc {
	if h.maxProcs > 0 && len(h.procs) >= h.maxProcs {
		// The bound degrades visibly: the refusal lands in Errors where
		// the user (or the session's operator) can see it, instead of
		// the process quietly accumulating goroutines.
		h.appendErrors(fmt.Sprintf("%s: refused: session limit of %d live commands reached (Kill one first)\n",
			name, h.maxProcs))
		if h.Obs != nil {
			h.Obs.Event("limit", fmt.Sprintf("proc refused: %s", name))
		}
		return nil
	}
	if h.procGate != nil {
		// The daemon-wide command budget, checked after the per-session
		// bound: the whole process shares one machine's cores, so a
		// thousand polite sessions can still add up to a refusal.
		if err := h.procGate(); err != nil {
			h.appendErrors(fmt.Sprintf("%s: refused: %v\n", name, err))
			if h.Obs != nil {
				h.Obs.Event("limit", fmt.Sprintf("proc refused (daemon budget): %s", name))
			}
			return nil
		}
	}
	h.procSeq++
	p := &proc{
		id:    h.procSeq,
		name:  name,
		winID: winID,
		start: time.Now(),
		kill:  ctx.Kill,
		done:  make(chan struct{}),
	}
	h.procs[p.id] = p
	h.mProcsLive.Add(1)
	if h.ins.on {
		h.ins.procsStarted.Inc()
	}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				stack := debug.Stack()
				h.enqueue(func() { h.PanicReport("exec "+name, r, stack) })
			}
			// The reap is enqueued from the same goroutine as every
			// output chunk, so FIFO ordering guarantees all output has
			// landed in Errors before done closes.
			h.enqueue(func() { h.reapProc(p) })
		}()
		run(ctx)
	}()
	return p
}

// reapProc removes a finished command from the table. Runs under the
// actor lock, applied from the queue.
func (h *Help) reapProc(p *proc) {
	if h.procs[p.id] != p {
		return
	}
	delete(h.procs, p.id)
	h.mProcsLive.Add(-1)
	if h.ins.on {
		h.ins.procHist.Observe(time.Since(p.start))
	}
	if p.killed {
		h.appendErrors(fmt.Sprintf("%s: killed\n", p.name))
	}
	h.procIdle.Broadcast()
	close(p.done)
}

// spawnBg is the shell's Spawn hook: a backgrounded command (cmd &)
// becomes its own registry entry with its own kill flag. Called from a
// command goroutine, never with the actor lock held.
func (h *Help) spawnBg(label string, ctx *shell.Context, run func(*shell.Context) int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ctx.Kill = &shell.KillFlag{}
	ctx.Spawn = h.spawnBg
	h.startProc(label, 0, ctx, run)
}

// procsInfo snapshots the process table sorted by id. Runs under the
// actor lock.
func (h *Help) procsInfo() []ProcInfo {
	out := make([]ProcInfo, 0, len(h.procs))
	for _, p := range h.procs {
		state := "running"
		if p.killed {
			state = "killed"
		}
		out = append(out, ProcInfo{
			ID:      p.id,
			Name:    p.name,
			WinID:   p.winID,
			Runtime: time.Since(p.start),
			State:   state,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Procs returns the live command table.
func (h *Help) Procs() []ProcInfo {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.procsInfo()
}

// killCmd implements the Kill built-in: with no arguments every live
// command is killed; otherwise arguments select commands by id or by
// name substring. Runs under the actor lock.
func (h *Help) killCmd(args []string) {
	if len(h.procs) == 0 {
		h.appendErrors("Kill: no commands running\n")
		return
	}
	matched := 0
	for _, p := range h.procs {
		if len(args) > 0 && !procMatches(p, args) {
			continue
		}
		if !p.killed {
			stopProc(p)
		}
		matched++
	}
	if matched == 0 {
		h.appendErrors(fmt.Sprintf("Kill: no command matches %v\n", args))
	}
}

// killProcsForWindow kills every live command launched from window w,
// reporting each in Errors; Close! calls it so a window never vanishes
// out from under its commands silently. Runs under the actor lock.
func (h *Help) killProcsForWindow(w *Window) {
	for _, p := range h.procs {
		if p.winID == w.ID && !p.killed {
			stopProc(p)
			h.appendErrors(fmt.Sprintf("Close!: killing %s\n", p.name))
		}
	}
}

// KillAll kills every live command, the way Exit's second step does;
// the daemon's drain and crash containment use it to stop a session's
// work without going through the command language.
func (h *Help) KillAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.killAllProcs()
}

// killAllProcs kills every live command (the second step of Exit over
// running commands). Runs under the actor lock.
func (h *Help) killAllProcs() {
	for _, p := range h.procs {
		if !p.killed {
			stopProc(p)
		}
	}
}

func procMatches(p *proc, args []string) bool {
	for _, a := range args {
		if id, err := strconv.Atoi(a); err == nil && id == p.id {
			return true
		}
		if a == p.name || containsWord(p.name, a) {
			return true
		}
	}
	return false
}

// containsWord reports whether name contains a as a blank-delimited word
// (so `Kill sleep` matches "sleep 10" but not "sleeper 10").
func containsWord(name, a string) bool {
	start := 0
	for i := 0; i <= len(name); i++ {
		if i == len(name) || name[i] == ' ' || name[i] == '\t' {
			if name[start:i] == a {
				return true
			}
			start = i + 1
		}
	}
	return false
}

// View is the under-lock accessor helpfs device handlers use: handlers
// run either from the event loop (lock already held) or through the
// serialized vfs view (lock taken at the FS boundary), so they must call
// twins, never the locking exported methods.
type View struct{ h *Help }

// View returns the under-lock accessor. Only call its methods while the
// actor lock is held.
func (h *Help) View() View { return View{h} }

// Windows returns all windows ordered by id.
func (v View) Windows() []*Window { return v.h.windows() }

// Window returns the window with the given id, or nil.
func (v View) Window(id int) *Window { return v.h.byID[id] }

// NewWindow creates an empty window placed by the heuristic.
func (v View) NewWindow() *Window { return v.h.newWindowIn(v.h.selectionColumn()) }

// OpenFile opens name in a window, as the exported OpenFile does.
func (v View) OpenFile(name, addr string) (*Window, error) { return v.h.openFile(name, addr) }

// CloseWindow removes w.
func (v View) CloseWindow(w *Window) { v.h.closeWindow(w) }

// Procs snapshots the live command table.
func (v View) Procs() []ProcInfo { return v.h.procsInfo() }

// CheckMem is the memory admission check for growing a window buffer
// by addRunes runes (a byte count is an acceptable overestimate): it
// consults the session's MaxBytes cap and, for large loads, the
// daemon-wide gate, returning a typed busy error on refusal.
func (v View) CheckMem(addRunes int) error { return v.h.checkMem(addRunes) }
