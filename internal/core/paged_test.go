package core

import (
	"fmt"
	"strings"
	"testing"
)

// bigBody builds a line-structured body of roughly n bytes.
func bigBody(n int) string {
	var b strings.Builder
	b.Grow(n + 64)
	for i := 0; b.Len() < n; i++ {
		fmt.Fprintf(&b, "line %d: the quick brown fox jumps over the lazy dog\n", i)
	}
	return b.String()
}

// pagedWorld builds a help world with a low paging threshold and one
// large file that crosses it.
func pagedWorld(t *testing.T) (*Help, string, string) {
	t.Helper()
	h, fs := world(t)
	h.SetLimits(Limits{MaxResident: 32 << 10})
	body := bigBody(256 << 10)
	fs.WriteFile("/usr/rob/lib/trace.log", []byte(body))
	return h, "/usr/rob/lib/trace.log", body
}

func TestOpenFilePaged(t *testing.T) {
	h, name, body := pagedWorld(t)
	w, err := h.OpenFile(name, "")
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if !w.Body.Paged() {
		t.Fatal("large body did not open paged")
	}
	if got := w.Body.Len(); got != len(body) {
		t.Fatalf("Len = %d, want %d", got, len(body))
	}
	if got := w.Body.NLines(); got != strings.Count(body, "\n") {
		t.Fatalf("NLines = %d, want %d", got, strings.Count(body, "\n"))
	}
	// Scrolling to the end faults in only the tail pages; residency is
	// bounded by the cache cap (which floors at one 64 KiB page) plus
	// one in-flight page, far below the full body.
	w.Scroll(w.Body.NLines())
	if mr := w.Body.MemRunes(); mr > 128<<10 {
		t.Errorf("MemRunes = %d after scroll, want <= %d", mr, 128<<10)
	}
	if mr := w.Body.MemRunes(); mr >= len(body) {
		t.Errorf("MemRunes = %d: whole body resident", mr)
	}
	if h.Obs.Counter("core.paged.open").Load() == 0 {
		t.Error("core.paged.open counter not bumped")
	}
	// The full body is still reachable through the same API.
	if got := w.Body.String(); got != body {
		t.Error("String() mismatch on paged body")
	}
}

func TestOpenFileSmallStaysUnpaged(t *testing.T) {
	h, _ := world(t)
	h.SetLimits(Limits{MaxResident: 32 << 10})
	w, err := h.OpenFile("/usr/rob/src/help/help.c", "")
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if w.Body.Paged() {
		t.Error("small body opened paged")
	}
}

func TestGetSkipsUnchanged(t *testing.T) {
	h, fs := world(t)
	w, err := h.OpenFile("/usr/rob/src/help/help.c", "")
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	c := h.Obs.Counter("core.get.unchanged")
	before := c.Load()
	if err := h.get(w); err != nil {
		t.Fatalf("get: %v", err)
	}
	if c.Load() != before+1 {
		t.Errorf("unchanged get did not skip (counter %d -> %d)", before, c.Load())
	}
	// Rewrite the file: the next Get must do a real reload.
	fs.WriteFile("/usr/rob/src/help/help.c", []byte("fresh\n"))
	if err := h.get(w); err != nil {
		t.Fatalf("get after write: %v", err)
	}
	if got := w.Body.String(); got != "fresh\n" {
		t.Errorf("body after changed get = %q", got)
	}
	if c.Load() != before+1 {
		t.Errorf("changed get was wrongly skipped")
	}
	// A locally modified body must reload even when the file is unchanged
	// (Get is the "discard my edits" command).
	w.Body.Insert(0, "junk")
	if err := h.get(w); err != nil {
		t.Fatalf("get of modified body: %v", err)
	}
	if got := w.Body.String(); got != "fresh\n" {
		t.Errorf("modified get did not restore file: %q", got)
	}
}

func TestGetPagedReload(t *testing.T) {
	h, name, body := pagedWorld(t)
	w, err := h.OpenFile(name, "")
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	// Unchanged file: skip, still paged.
	if err := h.get(w); err != nil {
		t.Fatalf("get: %v", err)
	}
	if !w.Body.Paged() {
		t.Fatal("get of unchanged paged window dropped paging")
	}
	// Grow the file: Get reloads paged at the new size.
	fs := h.FS
	grown := body + "tail line\n"
	fs.WriteFile(name, []byte(grown))
	if err := h.get(w); err != nil {
		t.Fatalf("get after grow: %v", err)
	}
	if !w.Body.Paged() {
		t.Error("reload of large file not paged")
	}
	if got := w.Body.Len(); got != len(grown) {
		t.Errorf("Len after reload = %d, want %d", got, len(grown))
	}
	// Shrink below the threshold: Get falls back to a materialized body.
	fs.WriteFile(name, []byte("tiny\n"))
	if err := h.get(w); err != nil {
		t.Fatalf("get after shrink: %v", err)
	}
	if got := w.Body.String(); got != "tiny\n" {
		t.Errorf("body after shrink = %q", got)
	}
}

func TestClonePaged(t *testing.T) {
	h, name, body := pagedWorld(t)
	w, err := h.OpenFile(name, "")
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	h.Execute(w, "Clone!")
	wins := h.Windows()
	var nw *Window
	for _, x := range wins {
		if x != w && x.FileName() == name {
			nw = x
		}
	}
	if nw == nil {
		t.Fatal("Clone! did not create a window")
	}
	if !nw.Body.Paged() {
		t.Error("clone of paged body is not paged")
	}
	if nw.Body.Len() != len(body) {
		t.Errorf("clone Len = %d, want %d", nw.Body.Len(), len(body))
	}
	if nw.Body.Modified() {
		t.Error("clone marked modified")
	}
	// Clone shares no mutable state: editing one must not touch the other.
	nw.Body.Insert(0, "x")
	if w.Body.Len() != len(body) {
		t.Error("edit of clone leaked into original")
	}
	if nw.fileGen != w.fileGen {
		t.Errorf("clone fileGen = %d, want %d", nw.fileGen, w.fileGen)
	}
}
