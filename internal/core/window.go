// Package core implements help itself: the combination of editor, window
// system, shell, and user interface the paper describes. The screen is
// tiled with columns of windows; each window is two editable subwindows (a
// one-line tag and a body); the three mouse buttons select, execute, and
// arrange; automatic heuristics and defaults fill in everything else.
package core

import (
	"fmt"
	"strings"

	"repro/internal/frame"
	"repro/internal/text"
	"repro/internal/vfs"
)

// Subwindow indices: every window is a tag above a body, and each
// subwindow has its own selection.
const (
	SubTag = iota
	SubBody
)

// Selection is a rune range [Q0, Q1) within one subwindow.
type Selection struct {
	Q0, Q1 int
}

// Empty reports whether the selection is null.
func (s Selection) Empty() bool { return s.Q0 >= s.Q1 }

// Window is one help window: a tag line and a body of editable text.
type Window struct {
	ID   int
	Tag  *text.Buffer
	Body *text.Buffer

	// Sel holds the selection of each subwindow (SubTag, SubBody).
	Sel [2]Selection

	// top is the row of the tag line within the column; the window's
	// displayed region runs from top to the top of the next displayed
	// window below it (or the column bottom).
	top    int
	hidden bool
	col    *Column

	// bodyOrg is the body frame origin (scroll position), preserved
	// across renders.
	bodyOrg int

	// frames are rebuilt at render time; kept for mouse translation.
	tagFrame  *frame.Frame
	bodyFrame *frame.Frame

	// IsDir marks directory windows, whose tag ends in a slash and whose
	// body lists the directory.
	IsDir bool

	// fileGen is the generation of the window's file as of the last
	// load or put (0 when unknown). Get compares it against a fresh
	// stat to skip re-reading a file that has not moved.
	fileGen uint64

	// notifiedBody and notifiedTag are the buffer generations the last
	// notify sweep announced; see Help.notifySweep.
	notifiedBody uint64
	notifiedTag  uint64
}

// newWindow builds an empty window with the given id.
func newWindow(id int) *Window {
	return &Window{
		ID:   id,
		Tag:  text.NewBuffer(""),
		Body: text.NewBuffer(""),
	}
}

// FileName returns the first space-separated word of the tag: the name of
// the file whose text appears in the body, or "" if the tag is empty.
func (w *Window) FileName() string {
	tag := w.Tag.String()
	if i := strings.IndexAny(tag, " \t"); i >= 0 {
		tag = tag[:i]
	}
	return strings.TrimSuffix(tag, "!")
}

// Dir returns the directory context of the window, derived from the tag
// line: the directory part of the file name ("each command operates in the
// directory appropriate to its operands"). A directory window is its own
// context; a window with no file name contexts at /.
func (w *Window) Dir() string {
	name := w.FileName()
	if name == "" {
		return "/"
	}
	if strings.HasSuffix(name, "/") {
		return vfs.Clean(name)
	}
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		return vfs.Clean(name[:i+1])
	}
	return "/"
}

// SetNameTag sets the window tag to a file name followed by the standard
// tag commands. Modified windows additionally show Put! ("the word Put!
// appears in the tag of a modified window").
func (w *Window) SetNameTag(name string) {
	w.setTagLine(name, w.Body.Modified() && !w.IsDir)
}

// RefreshTag re-renders the tag's command section, preserving the name.
func (w *Window) RefreshTag() {
	w.SetNameTag(w.FileName())
}

func (w *Window) setTagLine(name string, modified bool) {
	var b strings.Builder
	b.WriteString(name)
	b.WriteString("\tClose!")
	if modified {
		b.WriteString(" Put!")
	}
	if name != "" && !strings.HasSuffix(name, "/") {
		b.WriteString(" Get!")
	}
	w.Tag.SetString(b.String())
	w.Tag.SetClean()
	// Editing the tag must not leave a stale selection.
	w.Sel[SubTag] = clampSel(w.Sel[SubTag], w.Tag.Len())
}

func clampSel(s Selection, n int) Selection {
	if s.Q0 < 0 {
		s.Q0 = 0
	}
	if s.Q0 > n {
		s.Q0 = n
	}
	if s.Q1 > n {
		s.Q1 = n
	}
	if s.Q1 < s.Q0 {
		s.Q1 = s.Q0
	}
	return s
}

// Buffer returns the buffer of the given subwindow.
func (w *Window) Buffer(sub int) *text.Buffer {
	if sub == SubTag {
		return w.Tag
	}
	return w.Body
}

// SetSelection sets the selection of a subwindow, clamped to the buffer.
func (w *Window) SetSelection(sub int, q0, q1 int) {
	if q1 < q0 {
		q0, q1 = q1, q0
	}
	w.Sel[sub] = clampSel(Selection{q0, q1}, w.Buffer(sub).Len())
}

// SelectedText returns the text of the subwindow's selection.
func (w *Window) SelectedText(sub int) string {
	s := w.Sel[sub]
	return w.Buffer(sub).Slice(s.Q0, s.Q1-s.Q0)
}

// ShowAddr resolves addr against the body ("help.c:27" positions the
// window so line 27 is visible and selected) and scrolls to it.
func (w *Window) ShowAddr(addr string) error {
	q0, q1, err := w.Body.Address(addr)
	if err != nil {
		return fmt.Errorf("%s: %w", w.FileName(), err)
	}
	w.Sel[SubBody] = Selection{q0, q1}
	w.scrollTo(q0)
	return nil
}

// scrollTo positions the body origin so offset q is visible with context:
// its line lands a third of the way down the displayed body.
func (w *Window) scrollTo(q int) {
	lines := w.visibleBodyRows()
	if lines <= 0 {
		lines = 3
	}
	ln := w.Body.LineAt(q)
	// The end of a newline-terminated buffer resolves to the phantom
	// line after the last newline; clamp so addressing past EOF
	// (file.c:9999) cannot scroll beyond the last real line.
	if max := w.Body.NLines(); ln > max {
		ln = max
	}
	top := ln - lines/3
	if top < 1 {
		top = 1
	}
	w.bodyOrg = w.Body.LineStart(top)
}

// visibleBodyRows estimates how many body rows the window currently shows.
func (w *Window) visibleBodyRows() int {
	if w.col == nil {
		return 0
	}
	return w.col.visibleSpan(w) - 1
}

// Scroll moves the body origin by delta lines (negative scrolls up).
func (w *Window) Scroll(delta int) {
	ln := w.Body.LineAt(w.bodyOrg) + delta
	if ln < 1 {
		ln = 1
	}
	max := w.Body.NLines()
	if ln > max {
		ln = max
	}
	w.bodyOrg = w.Body.LineStart(ln)
}
