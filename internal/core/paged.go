package core

import (
	"fmt"
	"io"

	"repro/internal/vfs"
)

// DefaultMaxResident is the body size above which openFile switches from
// materializing the file into a gap buffer to the paged piece table, and
// simultaneously the resident-byte cap of each paged buffer. 8 MiB keeps
// every pre-existing workload (sources, man pages, listings) on the
// exact old path while a gigabyte log costs a bounded working set.
const DefaultMaxResident = 8 << 20

// pagedEligible reports whether a body with this stat should open paged:
// the feature is on, the file is regular (devices stat with Size 0 and
// must keep their snapshot semantics), it carries a generation to pin,
// and it is bigger than the resident budget — below that, paging is pure
// overhead.
func (h *Help) pagedEligible(info vfs.Info) bool {
	return h.maxResident > 0 && !info.IsDir && info.Gen != 0 && info.Size > h.maxResident
}

// fsSource adapts the namespace to text.Source for one file pinned at
// the generation observed at open. Faults run under the actor lock (the
// buffer is only touched on the event loop), so reads go through the raw
// FS view — the serialized view would deadlock.
//
// If the file is replaced while pages are still unresident, rereads
// would see the new bytes under the old index; the generation check
// turns that into a read error instead, which the text layer degrades
// to placeholder pages. Get then reloads cleanly. The condition is
// counted and announced on the event bus, but deliberately not written
// to the Errors window: faults fire mid-render, when mutating windows
// is off limits.
type fsSource struct {
	h     *Help
	name  string
	gen   uint64
	size  int64
	moved bool
}

func (s *fsSource) Size() int64 { return s.size }

func (s *fsSource) ReadAt(p []byte, off int64) (int, error) {
	data, gen, err := s.h.FS.ReadFileAt(s.name, off, int64(len(p)))
	if err != nil {
		s.noteMoved(err)
		return 0, err
	}
	if gen != s.gen {
		err := fmt.Errorf("core: %s: file replaced under paged window (gen %d -> %d)", s.name, s.gen, gen)
		s.noteMoved(err)
		return 0, err
	}
	n := copy(p, data)
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (s *fsSource) noteMoved(err error) {
	if s.moved {
		return
	}
	s.moved = true
	s.h.Obs.Counter("core.paged.moved").Inc()
	s.h.Obs.Event("paged", fmt.Sprintf("%s: paged source unavailable: %v", s.name, err))
}

// loadPagedBody points w's body at name as a paged piece table, charging
// the memory budget for the full resident cap up front (the most the
// buffer will ever hold of the file). On error the window is untouched
// and the caller falls back to a materialized load.
func (h *Help) loadPagedBody(w *Window, name string, info vfs.Info) error {
	if err := h.checkMem(int(h.maxResident / MemBytesPerRune)); err != nil {
		return err
	}
	src := &fsSource{h: h, name: name, gen: info.Gen, size: info.Size}
	if err := w.Body.LoadPaged(src, h.maxResident); err != nil {
		h.Obs.Counter("core.paged.fallback").Inc()
		return err
	}
	w.fileGen = info.Gen
	h.Obs.Counter("core.paged.open").Inc()
	h.Obs.Event("paged", fmt.Sprintf("%s: opened paged (%d bytes, %d resident cap)", name, info.Size, h.maxResident))
	return nil
}
