package core

import (
	"strings"
	"testing"
)

func dirtyWindow(t *testing.T, h *Help) *Window {
	t.Helper()
	w, err := h.OpenFile("/usr/rob/src/help/help.c", "")
	if err != nil {
		t.Fatal(err)
	}
	w.Body.Insert(0, "edit ")
	w.Body.Commit()
	if !w.Body.Modified() {
		t.Fatal("edit did not mark the body modified")
	}
	return w
}

func TestExitRefusedWhileDirty(t *testing.T) {
	h, _ := world(t)
	w := dirtyWindow(t, h)

	h.Execute(w, "Exit")
	if h.Exited() {
		t.Fatal("Exit discarded unsaved changes on the first try")
	}
	errs := h.Errors().Body.String()
	if !strings.Contains(errs, "unsaved changes") || !strings.Contains(errs, w.FileName()) {
		t.Fatalf("Errors window does not list the dirty window: %q", errs)
	}

	// An immediate repeat means "yes, discard".
	h.Execute(w, "Exit")
	if !h.Exited() {
		t.Fatal("second Exit did not proceed")
	}
}

func TestExitPendingClearedByOtherCommand(t *testing.T) {
	h, _ := world(t)
	w := dirtyWindow(t, h)

	h.Execute(w, "Exit")
	if h.Exited() {
		t.Fatal("exited on first Exit")
	}
	// Any intervening command disarms the confirmation.
	h.Execute(w, "Snarf")
	h.Execute(w, "Exit")
	if h.Exited() {
		t.Fatal("Exit after an intervening command skipped the confirmation")
	}
	h.Execute(w, "Exit")
	if !h.Exited() {
		t.Fatal("confirmed Exit did not proceed")
	}
}

func TestExitCleanProceedsImmediately(t *testing.T) {
	h, _ := world(t)
	w, err := h.OpenFile("/usr/rob/src/help/help.c", "")
	if err != nil {
		t.Fatal(err)
	}
	h.Execute(w, "Exit")
	if !h.Exited() {
		t.Fatal("clean session should exit on the first Exit")
	}
}

// Saving the file disarms the guard the honest way.
func TestExitAfterPut(t *testing.T) {
	h, _ := world(t)
	w := dirtyWindow(t, h)
	h.Execute(w, "Put!")
	if w.Body.Modified() {
		t.Fatal("Put! left the body modified")
	}
	h.Execute(w, "Exit")
	if !h.Exited() {
		t.Fatal("Exit refused after Put!")
	}
}

// Scratch (unnamed) windows, directories, and the Errors window never
// block Exit: they have nowhere to be saved to.
func TestExitIgnoresUnsavableWindows(t *testing.T) {
	h, _ := world(t)
	scratch := h.NewWindow()
	scratch.Body.SetString("ephemeral text")
	dir, err := h.OpenFile("/usr/rob/src/help", "")
	if err != nil {
		t.Fatal(err)
	}
	dir.Body.Insert(0, "x")
	h.AppendErrors("some diagnostics\n")
	h.Errors().Body.Insert(0, "more")

	h.Execute(scratch, "Exit")
	if !h.Exited() {
		t.Fatal("unsavable windows blocked Exit")
	}
}

func TestAppendErrorsTrimsFront(t *testing.T) {
	h, _ := world(t)
	line := strings.Repeat("x", 127) + "\n"
	for i := 0; i < defaultErrorsCap/len(line)+64; i++ {
		h.AppendErrors(line)
	}
	w := h.Errors()
	if n := w.Body.Len(); n > defaultErrorsCap {
		t.Fatalf("Errors body %d runes, cap %d", n, defaultErrorsCap)
	}
	body := w.Body.String()
	// The trim lands on a line boundary, so the window still starts
	// with a whole line; the newest output is always kept.
	if !strings.HasPrefix(body, line) {
		t.Fatalf("Errors body starts mid-line: %q", body[:64])
	}
	if !strings.HasSuffix(body, line) {
		t.Fatal("trim discarded the newest output")
	}
	sel := w.Sel[SubBody]
	if sel.Q0 < 0 || sel.Q1 > w.Body.Len() || sel.Q0 > sel.Q1 {
		t.Fatalf("selection %+v out of range after trim", sel)
	}
	if w.bodyOrg < 0 || w.bodyOrg > w.Body.Len() {
		t.Fatalf("bodyOrg %d out of range after trim", w.bodyOrg)
	}
}

// One oversized append must still be trimmed, even though it has no
// interior line boundary near the cap.
func TestAppendErrorsOversizedBlob(t *testing.T) {
	h, _ := world(t)
	h.AppendErrors(strings.Repeat("y", defaultErrorsCap*2))
	w := h.Errors()
	if n := w.Body.Len(); n > defaultErrorsCap {
		t.Fatalf("Errors body %d runes after blob, cap %d", n, defaultErrorsCap)
	}
}
