package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/geom"
	"repro/internal/shell"
	"repro/internal/userland"
	"repro/internal/vfs"
)

// world builds a help instance over a small namespace.
func world(t *testing.T) (*Help, *vfs.FS) {
	t.Helper()
	fs := vfs.New()
	fs.MkdirAll("/bin")
	fs.MkdirAll("/usr/rob/src/help")
	fs.MkdirAll("/usr/rob/lib")
	fs.WriteFile("/usr/rob/src/help/help.c", []byte("#include <u.h>\nint n;\nvoid main(void)\n{\n\tn = 1;\n}\n"))
	fs.WriteFile("/usr/rob/src/help/dat.h", []byte("typedef struct Text Text;\n"))
	fs.WriteFile("/usr/rob/lib/profile", []byte("bind -a /home/bin /bin\n"))
	sh := shell.New(fs)
	userland.Install(sh)
	h := New(fs, sh, 80, 24)
	return h, fs
}

func TestNewLayout(t *testing.T) {
	h, _ := world(t)
	if h.Columns() != 2 {
		t.Errorf("columns = %d", h.Columns())
	}
	if len(h.Windows()) != 0 {
		t.Errorf("windows = %d", len(h.Windows()))
	}
	h.Render()
	// The column tab row exists.
	s := h.Screen()
	if s.At(geom.Pt(0, 0)).R != '■' || s.At(geom.Pt(40, 0)).R != '■' {
		t.Error("column tabs missing")
	}
}

func TestOpenFileCreatesWindow(t *testing.T) {
	h, _ := world(t)
	w, err := h.OpenFile("/usr/rob/src/help/help.c", "")
	if err != nil {
		t.Fatal(err)
	}
	if w.FileName() != "/usr/rob/src/help/help.c" {
		t.Errorf("name = %q", w.FileName())
	}
	if !strings.Contains(w.Body.String(), "int n;") {
		t.Errorf("body = %q", w.Body.String())
	}
	if !strings.Contains(w.Tag.String(), "Close!") {
		t.Errorf("tag = %q", w.Tag.String())
	}
	if w.Body.Modified() {
		t.Error("fresh window should be clean")
	}
}

func TestOpenFileReuse(t *testing.T) {
	h, _ := world(t)
	a, _ := h.OpenFile("/usr/rob/src/help/help.c", "")
	b, _ := h.OpenFile("/usr/rob/src/help/help.c", "")
	if a != b {
		t.Error("same file opened twice")
	}
	if len(h.Windows()) != 1 {
		t.Errorf("windows = %d", len(h.Windows()))
	}
}

func TestOpenFileAddr(t *testing.T) {
	h, _ := world(t)
	w, err := h.OpenFile("/usr/rob/src/help/help.c", "5")
	if err != nil {
		t.Fatal(err)
	}
	sel := w.Sel[SubBody]
	if w.Body.LineAt(sel.Q0) != 5 {
		t.Errorf("selection at line %d", w.Body.LineAt(sel.Q0))
	}
	if w.SelectedText(SubBody) != "\tn = 1;" {
		t.Errorf("selected %q", w.SelectedText(SubBody))
	}
}

func TestOpenMissingFile(t *testing.T) {
	h, _ := world(t)
	if _, err := h.OpenFile("/no/such/file", ""); err == nil {
		t.Error("want error")
	}
	if len(h.Windows()) != 0 {
		t.Error("failed open leaked a window")
	}
}

func TestOpenDirectory(t *testing.T) {
	h, _ := world(t)
	w, err := h.OpenFile("/usr/rob/src/help", "")
	if err != nil {
		t.Fatal(err)
	}
	if !w.IsDir {
		t.Error("IsDir = false")
	}
	if !strings.HasPrefix(w.Tag.String(), "/usr/rob/src/help/") {
		t.Errorf("tag = %q (want trailing slash)", w.Tag.String())
	}
	if !strings.Contains(w.Body.String(), "help.c\n") {
		t.Errorf("body = %q", w.Body.String())
	}
	if w.Dir() != "/usr/rob/src/help" {
		t.Errorf("Dir = %q", w.Dir())
	}
}

func TestWindowDirContext(t *testing.T) {
	h, _ := world(t)
	w, _ := h.OpenFile("/usr/rob/src/help/help.c", "")
	if w.Dir() != "/usr/rob/src/help" {
		t.Errorf("Dir = %q", w.Dir())
	}
	empty := h.NewWindow()
	if empty.Dir() != "/" {
		t.Errorf("empty Dir = %q", empty.Dir())
	}
}

func TestPlacementBelowLowestText(t *testing.T) {
	h, _ := world(t)
	a, _ := h.OpenFile("/usr/rob/src/help/dat.h", "") // 1 line body
	h.SetCurrent(a, SubBody)
	b := h.NewWindow()
	if b.col != a.col {
		t.Error("new window not in selection's column")
	}
	// dat.h window: tag + 1 body line, so next window lands 2 rows below
	// its top.
	if b.top != a.top+2 {
		t.Errorf("b.top = %d, want %d", b.top, a.top+2)
	}
}

func TestPlacementStages(t *testing.T) {
	h, _ := world(t)
	// Fill the first column with windows of big bodies until stage 3 hides
	// windows entirely.
	big := strings.Repeat("line\n", 100)
	fsWrite(t, h, "/big.txt", big)
	first, _ := h.OpenFile("/big.txt", "")
	h.SetCurrent(first, SubBody)
	col := first.col
	var wins []*Window
	for i := 0; i < 8; i++ {
		w := h.NewWindow()
		w.Body.SetString(big)
		wins = append(wins, w)
	}
	// Invariant: every displayed window shows at least its tag, and the
	// newest window got at least minVisible rows.
	last := wins[len(wins)-1]
	if col.visibleSpan(last) < minVisible {
		t.Errorf("newest window span = %d", col.visibleSpan(last))
	}
	for _, w := range col.displayed() {
		if col.visibleSpan(w) < 1 {
			t.Errorf("displayed window %d has no visible tag", w.ID)
		}
	}
	// Stage 3 must have hidden something by now.
	hidden := 0
	for _, w := range col.wins {
		if w.hidden {
			hidden++
		}
	}
	if hidden == 0 {
		t.Error("no window hidden after overfilling the column")
	}
}

func fsWrite(t *testing.T, h *Help, path, content string) {
	t.Helper()
	if err := h.FS.WriteFile(path, []byte(content)); err != nil {
		t.Fatal(err)
	}
}

func TestRevealCoversLower(t *testing.T) {
	h, _ := world(t)
	fsWrite(t, h, "/a", strings.Repeat("a\n", 30))
	fsWrite(t, h, "/b", strings.Repeat("b\n", 30))
	a, _ := h.OpenFile("/a", "")
	h.SetCurrent(a, SubBody)
	b, _ := h.OpenFile("/b", "")
	col := a.col
	if col != b.col {
		t.Fatal("windows in different columns")
	}
	h.Reveal(a)
	if !b.hidden {
		t.Error("lower window should be covered")
	}
	if col.visibleSpan(a) != col.r.Max.Y-a.top {
		t.Errorf("revealed window span = %d", col.visibleSpan(a))
	}
	// Tab click on b brings it back.
	h.Reveal(b)
	if b.hidden {
		t.Error("revealed window still hidden")
	}
}

func TestMoveWindowBetweenColumns(t *testing.T) {
	h, _ := world(t)
	w, _ := h.OpenFile("/usr/rob/src/help/help.c", "")
	src := w.col
	dstPt := geom.Pt(60, 5) // right column
	h.MoveWindow(w, dstPt)
	if w.col == src {
		t.Error("window did not change column")
	}
	if w.top != 5 {
		t.Errorf("top = %d", w.top)
	}
}

func TestMoveWindowNudgesCollision(t *testing.T) {
	h, _ := world(t)
	fsWrite(t, h, "/a", "a\n")
	fsWrite(t, h, "/b", "b\n")
	a, _ := h.OpenFile("/a", "")
	h.SetCurrent(a, SubBody)
	b, _ := h.OpenFile("/b", "")
	h.MoveWindow(b, geom.Pt(b.col.r.Min.X+2, a.top))
	if a.top == b.top && !a.hidden {
		t.Errorf("collision not resolved: a.top=%d b.top=%d", a.top, b.top)
	}
}

func TestCloseWindow(t *testing.T) {
	h, _ := world(t)
	w, _ := h.OpenFile("/usr/rob/src/help/help.c", "")
	h.SetCurrent(w, SubBody)
	h.CloseWindow(w)
	if len(h.Windows()) != 0 {
		t.Error("window not removed")
	}
	if cw, _ := h.Current(); cw != nil {
		t.Error("current selection survives close")
	}
	// Double close is a no-op.
	h.CloseWindow(w)
}

func TestErrorsWindow(t *testing.T) {
	h, _ := world(t)
	h.AppendErrors("first\n")
	h.AppendErrors("second\n")
	e := h.Errors()
	if e.Body.String() != "first\nsecond\n" {
		t.Errorf("errors body = %q", e.Body.String())
	}
	if !strings.HasPrefix(e.Tag.String(), "Errors") {
		t.Errorf("errors tag = %q", e.Tag.String())
	}
	if len(h.Windows()) != 1 {
		t.Errorf("windows = %d", len(h.Windows()))
	}
	// Closing it and appending again recreates it.
	h.CloseWindow(e)
	h.AppendErrors("third\n")
	if h.Errors().Body.String() != "third\n" {
		t.Errorf("recreated errors = %q", h.Errors().Body.String())
	}
}

func TestGetPut(t *testing.T) {
	h, fs := world(t)
	w, _ := h.OpenFile("/usr/rob/src/help/dat.h", "")
	w.Body.Insert(0, "// edited\n")
	w.RefreshTag()
	if !strings.Contains(w.Tag.String(), "Put!") {
		t.Errorf("modified tag = %q", w.Tag.String())
	}
	if err := h.Put(w, ""); err != nil {
		t.Fatal(err)
	}
	data, _ := fs.ReadFile("/usr/rob/src/help/dat.h")
	if !strings.HasPrefix(string(data), "// edited\n") {
		t.Errorf("file = %q", data)
	}
	if strings.Contains(w.Tag.String(), "Put!") {
		t.Errorf("clean tag still shows Put!: %q", w.Tag.String())
	}
	// Get! reloads, discarding edits.
	w.Body.Insert(0, "junk ")
	if err := h.Get(w); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(w.Body.String(), "// edited\n") {
		t.Errorf("after Get: %q", w.Body.String())
	}
	if w.Body.Modified() {
		t.Error("Get should mark clean")
	}
}

func TestSplitAddr(t *testing.T) {
	cases := []struct{ in, name, addr string }{
		{"help.c:27", "help.c", "27"},
		{"help.c", "help.c", ""},
		{"/usr/rob/src/help/text.c:32", "/usr/rob/src/help/text.c", "32"},
		{"f.c:#120", "f.c", "#120"},
		{"f.c:/main/", "f.c", "/main/"},
		{"odd:name", "odd:name", ""},
		{"trailing:", "trailing:", ""},
	}
	for _, c := range cases {
		name, addr := SplitAddr(c.in)
		if name != c.name || addr != c.addr {
			t.Errorf("SplitAddr(%q) = %q,%q want %q,%q", c.in, name, addr, c.name, c.addr)
		}
	}
}

func TestExpandFilename(t *testing.T) {
	h, _ := world(t)
	w := h.NewWindow()
	w.Body.SetString(`#include "dat.h"` + "\nsee text.c:32 here\n")
	// Point inside dat.h.
	off := strings.Index(w.Body.String(), "at.h")
	q0, q1 := expandFilename(w.Body, off)
	if got := w.Body.Slice(q0, q1-q0); got != "dat.h" {
		t.Errorf("expanded %q", got)
	}
	// Point inside text.c:32 — includes the address.
	off = strings.Index(w.Body.String(), "xt.c")
	q0, q1 = expandFilename(w.Body, off)
	if got := w.Body.Slice(q0, q1-q0); got != "text.c:32" {
		t.Errorf("expanded %q", got)
	}
}

func TestExecuteOpenWithArgument(t *testing.T) {
	h, _ := world(t)
	w := h.NewWindow()
	h.Execute(w, "Open /usr/rob/lib/profile")
	if h.WindowByName("/usr/rob/lib/profile") == nil {
		t.Error("profile window not created")
	}
}

func TestExecuteOpenDefaultFromSelection(t *testing.T) {
	h, _ := world(t)
	src, _ := h.OpenFile("/usr/rob/src/help/help.c", "")
	// Null selection inside "u.h"... actually point at dat.h-like token:
	// use the body's "u.h" include.
	body := src.Body.String()
	off := strings.Index(body, "u.h")
	src.SetSelection(SubBody, off, off)
	h.SetCurrent(src, SubBody)
	// Executing Open with no argument: context dir prepended to the
	// selected file name.
	other := h.NewWindow()
	h.Execute(other, "Open")
	if h.WindowByName("/usr/rob/src/help/u.h") != nil {
		t.Error("u.h does not exist; Open should have failed")
	}
	if !strings.Contains(h.Errors().Body.String(), "Open:") {
		t.Errorf("errors = %q", h.Errors().Body.String())
	}
	// Now a real file.
	off = strings.Index(body, "n = 1")
	src.Body.SetString(body[:off] + "dat.h" + body[off+5:])
	src.SetSelection(SubBody, off+2, off+2)
	h.SetCurrent(src, SubBody)
	h.Execute(other, "Open")
	if h.WindowByName("/usr/rob/src/help/dat.h") == nil {
		t.Error("dat.h window not created via default rules")
	}
}

func TestExecuteOpenFileLine(t *testing.T) {
	h, _ := world(t)
	w := h.NewWindow()
	h.Execute(w, "Open /usr/rob/src/help/help.c:5")
	opened := h.WindowByName("/usr/rob/src/help/help.c")
	if opened == nil {
		t.Fatal("window missing")
	}
	if opened.Body.LineAt(opened.Sel[SubBody].Q0) != 5 {
		t.Errorf("line = %d", opened.Body.LineAt(opened.Sel[SubBody].Q0))
	}
}

func TestExecuteCutPasteSnarf(t *testing.T) {
	h, _ := world(t)
	w := h.NewWindow()
	w.Body.SetString("hello cruel world")
	w.SetSelection(SubBody, 6, 12) // "cruel "
	h.SetCurrent(w, SubBody)
	h.Execute(w, "Cut")
	if w.Body.String() != "hello world" {
		t.Errorf("after Cut: %q", w.Body.String())
	}
	if h.Snarf() != "cruel " {
		t.Errorf("snarf = %q", h.Snarf())
	}
	// Paste it back at the start.
	w.SetSelection(SubBody, 0, 0)
	h.Execute(w, "Paste")
	if w.Body.String() != "cruel hello world" {
		t.Errorf("after Paste: %q", w.Body.String())
	}
	// Snarf copies without deleting.
	w.SetSelection(SubBody, 0, 5)
	h.Execute(w, "Snarf")
	if h.Snarf() != "cruel" || !strings.Contains(w.Body.String(), "cruel hello") {
		t.Errorf("snarf = %q body = %q", h.Snarf(), w.Body.String())
	}
}

func TestExecuteWindowOps(t *testing.T) {
	h, _ := world(t)
	w, _ := h.OpenFile("/usr/rob/src/help/dat.h", "")
	w.Body.Insert(0, "x")
	h.Execute(w, "Put!")
	data, _ := h.FS.ReadFile("/usr/rob/src/help/dat.h")
	if !strings.HasPrefix(string(data), "x") {
		t.Errorf("Put! did not write: %q", data)
	}
	h.Execute(w, "Close!")
	if h.WindowByName("/usr/rob/src/help/dat.h") != nil {
		t.Error("Close! did not close")
	}
}

func TestExecutePattern(t *testing.T) {
	h, _ := world(t)
	w := h.NewWindow()
	w.Body.SetString("alpha beta gamma beta")
	w.SetSelection(SubBody, 0, 0)
	h.SetCurrent(w, SubBody)
	h.Execute(w, "Pattern beta")
	if got := w.SelectedText(SubBody); got != "beta" {
		t.Fatalf("selected %q", got)
	}
	first := w.Sel[SubBody].Q0
	// Again: finds the next occurrence.
	h.Execute(w, "Pattern beta")
	if w.Sel[SubBody].Q0 <= first {
		t.Errorf("second match at %d, first %d", w.Sel[SubBody].Q0, first)
	}
	// And wraps.
	h.Execute(w, "Pattern beta")
	if w.Sel[SubBody].Q0 != first {
		t.Errorf("wrap landed at %d", w.Sel[SubBody].Q0)
	}
	// Missing pattern reports to Errors.
	h.Execute(w, "Pattern zebra")
	if !strings.Contains(h.Errors().Body.String(), "not found") {
		t.Errorf("errors = %q", h.Errors().Body.String())
	}
}

func TestExecuteText(t *testing.T) {
	h, _ := world(t)
	w := h.NewWindow()
	w.Body.SetString("XX")
	w.SetSelection(SubBody, 0, 2)
	h.SetCurrent(w, SubBody)
	h.Execute(w, "Text replaced words")
	if w.Body.String() != "replaced words" {
		t.Errorf("body = %q", w.Body.String())
	}
}

func TestExecuteUndoRedo(t *testing.T) {
	h, _ := world(t)
	w := h.NewWindow()
	w.Body.SetString("keep")
	w.SetSelection(SubBody, 4, 4)
	h.SetCurrent(w, SubBody)
	h.Execute(w, "Text  this")
	if w.Body.String() != "keep this" {
		t.Fatalf("body = %q", w.Body.String())
	}
	h.Execute(w, "Undo")
	if w.Body.String() != "keep" {
		t.Errorf("after Undo: %q", w.Body.String())
	}
	h.Execute(w, "Redo")
	if w.Body.String() != "keep this" {
		t.Errorf("after Redo: %q", w.Body.String())
	}
}

func TestExecuteExit(t *testing.T) {
	h, _ := world(t)
	w := h.NewWindow()
	h.Execute(w, "Exit")
	if !h.Exited() {
		t.Error("Exit did not exit")
	}
}

func TestExternalCommandOutputToErrors(t *testing.T) {
	h, _ := world(t)
	w, _ := h.OpenFile("/usr/rob/src/help/help.c", "")
	h.Execute(w, "echo external ran")
	if !strings.Contains(h.Errors().Body.String(), "external ran") {
		t.Errorf("errors = %q", h.Errors().Body.String())
	}
}

func TestExternalCommandDirPrepended(t *testing.T) {
	h, fs := world(t)
	// A tool script living next to the file gets found by bare name.
	fs.WriteFile("/usr/rob/src/help/localtool", []byte("echo ran from $0\n"))
	w, _ := h.OpenFile("/usr/rob/src/help/help.c", "")
	h.Execute(w, "localtool")
	if !strings.Contains(h.Errors().Body.String(), "/usr/rob/src/help/localtool") {
		t.Errorf("errors = %q", h.Errors().Body.String())
	}
}

func TestExternalCommandFallsBackToBin(t *testing.T) {
	h, fs := world(t)
	fs.WriteFile("/bin/bintool", []byte("echo from bin\n"))
	w, _ := h.OpenFile("/usr/rob/src/help/help.c", "")
	h.Execute(w, "bintool")
	if !strings.Contains(h.Errors().Body.String(), "from bin") {
		t.Errorf("errors = %q", h.Errors().Body.String())
	}
}

func TestExternalCommandGlobExpansion(t *testing.T) {
	h, fs := world(t)
	fs.WriteFile("/usr/rob/src/help/a.c", []byte("int aa;\n"))
	fs.WriteFile("/usr/rob/src/help/b.c", []byte("int bb;\n"))
	w, _ := h.OpenFile("/usr/rob/src/help/help.c", "")
	h.Execute(w, "grep int *.c")
	errs := h.Errors().Body.String()
	if !strings.Contains(errs, "a.c:int aa;") || !strings.Contains(errs, "b.c:int bb;") {
		t.Errorf("errors = %q", errs)
	}
}

func TestHelpselPassedToTools(t *testing.T) {
	h, fs := world(t)
	fs.WriteFile("/bin/showsel", []byte("echo sel=$helpsel\n"))
	w, _ := h.OpenFile("/usr/rob/src/help/help.c", "")
	w.SetSelection(SubBody, 3, 7)
	h.SetCurrent(w, SubBody)
	h.Execute(w, "showsel")
	want := "sel=" + "1:3,7"
	if !strings.Contains(h.Errors().Body.String(), want) {
		t.Errorf("errors = %q, want %q", h.Errors().Body.String(), want)
	}
}

func TestCommandNotFoundReported(t *testing.T) {
	h, _ := world(t)
	w := h.NewWindow()
	h.Execute(w, "no-such-cmd")
	if !strings.Contains(h.Errors().Body.String(), "not found") {
		t.Errorf("errors = %q", h.Errors().Body.String())
	}
}

func TestMetricsCounting(t *testing.T) {
	h, _ := world(t)
	h.OpenFile("/usr/rob/src/help/dat.h", "")
	h.Render()
	h.HandleAll(event.Click(event.Left, geom.Pt(5, 2)))
	h.HandleAll(event.Type("ab"))
	m := h.Metrics()
	if m.Presses != 1 {
		t.Errorf("presses = %d", m.Presses)
	}
	if m.Keystrokes != 2 {
		t.Errorf("keystrokes = %d", m.Keystrokes)
	}
}

func TestExpandColumn(t *testing.T) {
	h, _ := world(t)
	h.ExpandColumn(0)
	if h.cols[0].r.Dx() <= h.cols[1].r.Dx() {
		t.Error("column 0 did not expand")
	}
	h.ExpandColumn(1)
	if h.cols[1].r.Dx() <= h.cols[0].r.Dx() {
		t.Error("column 1 did not expand")
	}
}

func TestCloneWindow(t *testing.T) {
	h, _ := world2(t)
	w, _ := h.OpenFile("/usr/rob/src/help/help.c", "")
	h.Execute(w, "Clone!")
	wins := h.Windows()
	if len(wins) != 2 {
		t.Fatalf("windows = %d", len(wins))
	}
	clone := wins[1]
	if clone.FileName() != w.FileName() {
		t.Errorf("clone name = %q", clone.FileName())
	}
	// Independent editing: a change in one does not touch the other.
	clone.Body.Insert(0, "x")
	if strings.HasPrefix(w.Body.String(), "x") {
		t.Error("clone shares the original's buffer")
	}
	// Clone of a nameless window reports an error instead.
	empty := h.NewWindow()
	h.Execute(empty, "Clone!")
	if !strings.Contains(h.Errors().Body.String(), "Clone!") {
		t.Errorf("errors = %q", h.Errors().Body.String())
	}
}

func TestExecuteShellSyntax(t *testing.T) {
	h, fs := world2(t)
	w, _ := h.OpenFile("/usr/rob/src/help/help.c", "")
	// Redirection: output lands in the file, not the Errors window.
	h.Execute(w, "echo redirected > /tmp/out.txt")
	data, err := fs.ReadFile("/tmp/out.txt")
	if err != nil || string(data) != "redirected\n" {
		t.Errorf("redirect file = %q err=%v (errors: %q)", data, err, h.Errors().Body.String())
	}
	// Pipelines work too.
	h.Execute(w, "{ echo b; echo a } | sort | sed 1q")
	if !strings.Contains(h.Errors().Body.String(), "a") {
		t.Errorf("pipeline errors window = %q", h.Errors().Body.String())
	}
}

// world2 is world plus a /tmp directory for redirection tests.
func world2(t *testing.T) (*Help, *vfs.FS) {
	h, fs := world(t)
	fs.MkdirAll("/tmp")
	return h, fs
}

func TestSendRunsLastLine(t *testing.T) {
	h, _ := world2(t)
	w := h.NewWindow()
	w.Body.SetString("a typescript window\necho ran in a shell window\n")
	h.Execute(w, "Send")
	if !strings.Contains(w.Body.String(), "\nran in a shell window\n") {
		t.Errorf("body = %q", w.Body.String())
	}
	// Nothing lands in the Errors window.
	if h.errors != nil && strings.Contains(h.Errors().Body.String(), "ran in a shell") {
		t.Error("Send output leaked to Errors")
	}
}

func TestSendRunsSelection(t *testing.T) {
	h, _ := world2(t)
	w := h.NewWindow()
	w.Body.SetString("echo first\necho second\n")
	off := strings.Index(w.Body.String(), "echo first")
	w.SetSelection(SubBody, off, off+len("echo first"))
	h.SetCurrent(w, SubBody)
	// Send executed from anywhere applies to the selection's window.
	other := h.NewWindow()
	h.Execute(other, "Send")
	if !strings.Contains(w.Body.String(), "\nfirst\n") {
		t.Errorf("body = %q", w.Body.String())
	}
	if strings.Contains(w.Body.String(), "\nsecond\n") {
		t.Error("Send ran the wrong line")
	}
}

func TestSendUsesWindowDirContext(t *testing.T) {
	h, fs := world2(t)
	fs.WriteFile("/usr/rob/src/help/note", []byte("from the src dir\n"))
	w, _ := h.OpenFile("/usr/rob/src/help/help.c", "")
	h.SetCurrent(nil, SubBody)
	w.Body.Insert(w.Body.Len(), "\ncat note\n")
	h.Execute(w, "Send")
	if !strings.Contains(w.Body.String(), "from the src dir") {
		t.Errorf("body = %q", w.Body.String())
	}
}

func TestSendEmpty(t *testing.T) {
	h, _ := world2(t)
	w := h.NewWindow()
	h.Execute(w, "Send")
	if !strings.Contains(h.Errors().Body.String(), "Send:") {
		t.Errorf("errors = %q", h.Errors().Body.String())
	}
}

func TestReportFault(t *testing.T) {
	h, _ := world(t)
	h.ReportFault("remote (degraded)", errors.New("server gone"))
	h.ReportFault("remote (connected)", nil)
	body := h.Errors().Body.String()
	if !strings.Contains(body, "remote (degraded): server gone\n") {
		t.Errorf("errors = %q", body)
	}
	if !strings.Contains(body, "remote (connected): ok\n") {
		t.Errorf("errors = %q", body)
	}
}
