package core

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/text"
)

// barString renders w's scroll bar into a rows-tall gutter at the screen
// origin and returns it as a string: '#' for the bar, '.' for the trough.
func barString(h *Help, w *Window, rows int) string {
	h.screen.Clear()
	h.renderScrollBar(w, geom.Rt(0, 0, 1, rows))
	var b strings.Builder
	for y := 0; y < rows; y++ {
		if h.screen.At(geom.Pt(0, y)).R == '█' {
			b.WriteByte('#')
		} else {
			b.WriteByte('.')
		}
	}
	return b.String()
}

// bodyOfLines gives w a body of exactly n lines and scrolls to topLine.
func bodyOfLines(w *Window, n, topLine int) {
	w.Body = text.NewBuffer(strings.Repeat("line\n", n))
	w.bodyOrg = w.Body.LineStart(topLine)
}

// Golden scroll-bar geometry. The extent must show the visible fraction
// of the body and never overflow the gutter; short buffers fill it
// exactly. rows²/total (the old extent) overflowed for total < rows and
// then pinned the bar top wrongly near the end of the buffer.
func TestScrollBarGeometry(t *testing.T) {
	const rows = 10
	h, _ := world(t)
	w := h.NewWindow()
	cases := []struct {
		total, topLine int
		want           string
	}{
		{1, 1, "##########"},        // total = 1: everything visible
		{rows - 1, 1, "##########"}, // total = rows-1
		{rows, 1, "##########"},     // total = rows: exactly fills
		{10 * rows, 1, "#........."},   // total = 10·rows: 1/10 visible at top
		{10 * rows, 51, ".....#...."},  // mid-file: position = origin fraction
		{10 * rows, 96, ".........#"},  // near EOF: 5 lines left, bar pinned low
		{15, 11, "......###."},         // total>rows, tail shorter than a screen:
		// 5 of 15 lines visible from line 11 — extent 3, not the old 6.
	}
	for _, c := range cases {
		bodyOfLines(w, c.total, c.topLine)
		if got := barString(h, w, rows); got != c.want {
			t.Errorf("total=%d topLine=%d: bar %q, want %q", c.total, c.topLine, got, c.want)
		}
	}
}

func TestScrollBarNeverLongerThanGutter(t *testing.T) {
	h, _ := world(t)
	w := h.NewWindow()
	for _, rows := range []int{1, 2, 3, 7, 10} {
		for total := 1; total <= 3*rows; total++ {
			for top := 1; top <= total; top++ {
				bodyOfLines(w, total, top)
				bar := barString(h, w, rows)
				n := strings.Count(bar, "#")
				if n < 1 || n > rows {
					t.Fatalf("rows=%d total=%d top=%d: bar extent %d out of [1,%d] (%q)",
						rows, total, top, n, rows, bar)
				}
			}
		}
	}
}

// assertIncrementalRender renders incrementally, then forces a full
// repaint and checks both produce the identical screen — the soundness
// property of the per-column damage signatures.
func assertIncrementalRender(t *testing.T, h *Help) {
	t.Helper()
	h.Render()
	text, attrs := h.screen.String(), h.screen.AttrString()
	h.rendered = false // invalidate the cache: next Render repaints fully
	h.Render()
	if h.screen.String() != text {
		t.Fatalf("incremental render diverged from full render:\nincremental:\n%s\nfull:\n%s",
			text, h.screen.String())
	}
	if h.screen.AttrString() != attrs {
		t.Fatalf("incremental render attrs diverged from full render:\nincremental:\n%s\nfull:\n%s",
			attrs, h.screen.AttrString())
	}
}

// TestRenderIncrementalEquivalence walks a window through every kind of
// state change the damage signature must notice, comparing the
// incremental repaint against a forced full repaint at each step.
func TestRenderIncrementalEquivalence(t *testing.T) {
	h, _ := world(t)
	assertIncrementalRender(t, h)

	w, err := h.OpenFile("/usr/rob/src/help/help.c", "")
	if err != nil {
		t.Fatal(err)
	}
	assertIncrementalRender(t, h) // window appeared

	w.Body.Insert(0, "edited\n")
	assertIncrementalRender(t, h) // body edit

	w.SetSelection(SubBody, 0, 6)
	h.SetCurrent(w, SubBody)
	assertIncrementalRender(t, h) // selection + current ownership

	w2, err := h.OpenFile("/usr/rob/src/help/dat.h", "")
	if err != nil {
		t.Fatal(err)
	}
	h.SetCurrent(w2, SubTag)
	assertIncrementalRender(t, h) // current moved to another window

	w.Scroll(2)
	assertIncrementalRender(t, h) // scroll changes origin only

	h.sweepExec = &execSweep{win: w2, sub: SubTag, q0: 0, q1: 3}
	assertIncrementalRender(t, h) // live exec sweep underlines

	h.sweepExec = nil
	assertIncrementalRender(t, h) // sweep ended: underline must vanish

	h.MoveWindowToColumn(w2, 1)
	assertIncrementalRender(t, h) // window moved between columns

	w.Body.Undo()
	assertIncrementalRender(t, h) // undo edits content too

	h.ExpandColumn(1)
	assertIncrementalRender(t, h) // column geometry change forces full

	h.CloseWindow(w2)
	assertIncrementalRender(t, h) // window closed

	h.Errors() // creates the Errors window
	h.AppendErrors("something happened\n")
	assertIncrementalRender(t, h)
}

// TestRenderReusesFrames checks that an unchanged window keeps its laid
// out frame across redraws (the damage fast path) and drops it the moment
// its buffer changes.
func TestRenderReusesFrames(t *testing.T) {
	h, _ := world(t)
	w, err := h.OpenFile("/usr/rob/src/help/help.c", "")
	if err != nil {
		t.Fatal(err)
	}
	h.Render()
	f1 := w.bodyFrame
	if f1 == nil {
		t.Fatal("no body frame after render")
	}
	h.Render()
	if w.bodyFrame != f1 {
		t.Error("unchanged window relaid out its frame")
	}
	w.Body.Insert(0, "x")
	h.Render()
	if got := h.screen.String(); !strings.Contains(got, "x#include") {
		t.Errorf("stale render after edit:\n%s", got)
	}
}

// TestRenderUndoCleansTag: undoing the only edit must remove Put! from
// the tag on the next refresh, not keep offering to write an unchanged
// file.
func TestRenderUndoCleansTag(t *testing.T) {
	h, _ := world(t)
	w, err := h.OpenFile("/usr/rob/src/help/help.c", "")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(w.Tag.String(), "Put!") {
		t.Fatal("fresh window already offers Put!")
	}
	w.Body.Insert(0, "zzz")
	w.Body.Commit()
	w.RefreshTag()
	if !strings.Contains(w.Tag.String(), "Put!") {
		t.Fatal("edited window must offer Put!")
	}
	h.SetCurrent(w, SubBody)
	h.Execute(w, "Undo")
	if strings.Contains(w.Tag.String(), "Put!") {
		t.Errorf("undo back to clean state left Put! in tag %q", w.Tag.String())
	}
}
