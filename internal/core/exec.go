package core

import (
	"bytes"
	"fmt"
	"strings"
	"unicode"

	"repro/internal/obs"
	"repro/internal/shell"
	"repro/internal/text"
	"repro/internal/vfs"
)

// ExecuteAt executes the text in [q0, q1) of the given subwindow, the
// action of releasing the middle button. A null selection expands to the
// whole surrounding word (the rule of defaults: "a middle mouse button
// click anywhere in a word [is] a selection of the whole word"); a
// non-null selection "is always taken literally".
func (h *Help) ExecuteAt(w *Window, sub int, q0, q1 int) {
	h.mu.Lock()
	p := h.executeAt(w, sub, q0, q1)
	h.mu.Unlock()
	if p != nil {
		<-p.done
	}
}

func (h *Help) executeAt(w *Window, sub int, q0, q1 int) *proc {
	buf := w.Buffer(sub)
	if q0 == q1 {
		q0, q1 = expandWord(buf, q0)
	}
	cmd := buf.Slice(q0, q1-q0)
	return h.execute(w, cmd)
}

// Execute runs a command string in the context of window w: built-ins by
// name (capitalized by convention; names ending in ! are window operations
// taking no arguments), anything else as an external command under the
// context rules.
//
// Execute is synchronous: an external command runs in its own goroutine,
// but Execute waits for it to finish and for its output to land in
// Errors, so scripted sessions and tests stay deterministic. Start is
// the fire-and-forget variant; gesture dispatch is asynchronous too.
func (h *Help) Execute(w *Window, cmd string) {
	h.mu.Lock()
	p := h.execute(w, cmd)
	h.mu.Unlock()
	if p != nil {
		<-p.done
	}
}

// Start launches cmd in window w's context without waiting for it to
// finish. Its output streams into Errors as it is produced.
func (h *Help) Start(w *Window, cmd string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.execute(w, cmd)
}

// execute is the under-lock twin of Execute. It returns the launched
// proc for external commands, nil for builtins, so wrappers can decide
// whether to wait.
func (h *Help) execute(w *Window, cmd string) *proc {
	fields := strings.Fields(cmd)
	if len(fields) == 0 {
		return nil
	}
	// A panicking command (or tool) must not take the session down:
	// recover, journal what we know, report the fault. The sweep runs
	// after the recovery so whatever state the command did reach is
	// journaled consistently.
	defer h.JournalSweep()
	defer h.recoverPanic("exec " + fields[0])
	if fields[0] != "Exit" {
		// Any other command disarms a pending two-step Exit.
		h.exitPending = false
	}
	h.mCommands.Inc()
	h.Notify.Publish(winID(w), "exec", fields[0])
	var sp *obs.ActiveSpan
	if h.ins.on {
		sp = h.Obs.StartSpan("exec", fields[0])
	}
	builtin := true
	var p *proc
	switch fields[0] {
	case "Cut":
		h.cut()
	case "Paste":
		h.paste()
	case "Snarf":
		h.snarfSel()
	case "New":
		h.newWindowIn(h.selectionColumn())
	case "Exit":
		h.exitCmd()
	case "Kill":
		h.killCmd(fields[1:])
	case "Open":
		h.openCmd(w, fields[1:])
	case "Write":
		name := ""
		if len(fields) > 1 {
			name = h.absPath(w, fields[1])
		}
		target := w
		if cw, _ := h.current(); name == "" && cw != nil {
			target = cw
		}
		if err := h.put(target, name); err != nil {
			h.appendErrors(fmt.Sprintf("Write: %v\n", err))
		}
	case "Pattern":
		h.patternCmd(fields[1:])
	case "Text":
		// Preserve the argument's internal spacing: everything after the
		// command word, minus one separating space.
		rest := strings.TrimPrefix(strings.TrimLeft(cmd, " \t"), "Text")
		rest = strings.TrimPrefix(rest, " ")
		h.textCmd(rest)
	case "Undo":
		// An extension the paper lists as overdue future work.
		if cw, _ := h.current(); cw != nil {
			cw.Body.Undo()
			cw.Sel[SubBody] = clampSel(cw.Sel[SubBody], cw.Body.Len())
			cw.RefreshTag()
		}
	case "Redo":
		if cw, _ := h.current(); cw != nil {
			cw.Body.Redo()
			cw.Sel[SubBody] = clampSel(cw.Sel[SubBody], cw.Body.Len())
			cw.RefreshTag()
		}
	case "Close!":
		// "Commands ending in an exclamation mark take no arguments; they
		// are window operations that apply to the window in which they
		// are executed." Commands launched from the window are killed
		// visibly first, so they don't stream into a vanished context.
		h.killProcsForWindow(w)
		h.closeWindow(w)
	case "Get!":
		if err := h.get(w); err != nil {
			h.appendErrors(fmt.Sprintf("Get!: %v\n", err))
		}
	case "Put!":
		if err := h.put(w, ""); err != nil {
			h.appendErrors(fmt.Sprintf("Put!: %v\n", err))
		}
	case "Send":
		// Another future-work item ("support for traditional shell
		// windows"): Send runs the window's last line (or the current
		// selection, if any) as a shell command in the window's directory
		// context and appends the output to the body, making any window a
		// typescript.
		h.sendCmd(w)
	case "Clone!":
		// An extension from the paper's future-work list ("multiple
		// windows per file"): a second window on the same file, sharing
		// nothing but the name, so two regions can be viewed at once.
		h.cloneCmd(w)
	case "Metrics":
		// Observability through the same interface as everything else:
		// open the stats file helpfs serves, reloaded on each execution.
		h.metricsCmd()
	case "Watch":
		// Everything after the command word, spacing preserved.
		h.watchCmd(w, strings.TrimPrefix(strings.TrimPrefix(strings.TrimLeft(cmd, " \t"), "Watch"), " "))
	default:
		builtin = false
		p = h.runExternal(w, cmd, fields)
	}
	if builtin {
		h.ins.execBuiltin.Inc()
	} else {
		h.ins.execExternal.Inc()
	}
	h.ins.execHist.Observe(sp.End())
	return p
}

// exitCmd implements Exit with guards for work in flight: if any named
// file window is Modified, or any external command is still running, the
// first Exit refuses and lists them in Errors; an immediately repeated
// Exit kills the commands visibly and proceeds anyway. Scratch (unnamed)
// windows, directory listings, and the Errors window itself have nothing
// a Put! could save, so they never block exit.
func (h *Help) exitCmd() {
	var dirty []*Window
	for _, w := range h.windows() {
		if w.IsDir || w == h.errors || w.FileName() == "" {
			continue
		}
		if w.Body.Modified() {
			dirty = append(dirty, w)
		}
	}
	live := h.procsInfo()
	if (len(dirty) == 0 && len(live) == 0) || h.exitPending {
		if len(live) > 0 {
			h.appendErrors(fmt.Sprintf("Exit: killing %d running command(s)\n", len(live)))
			h.killAllProcs()
		}
		h.exited.Store(true)
		return
	}
	h.exitPending = true
	var b strings.Builder
	if len(dirty) > 0 {
		b.WriteString("Exit: unsaved changes; Exit again to discard:\n")
		for _, w := range dirty {
			fmt.Fprintf(&b, "\t%s\n", w.FileName())
		}
	}
	if len(live) > 0 {
		b.WriteString("Exit: commands still running; Exit again to kill:\n")
		for _, p := range live {
			fmt.Fprintf(&b, "\t%s\n", p.Name)
		}
	}
	h.appendErrors(b.String())
}

// sendCmd implements the Send builtin: the shell-window behaviour. It
// runs the command synchronously under the actor lock — output lands in
// the window itself, not Errors, so there is nothing to stream — with
// the raw namespace view (the serialized view would self-deadlock).
func (h *Help) sendCmd(w *Window) {
	line := ""
	if cw, csub := h.current(); cw != nil && csub == SubBody && !cw.Sel[SubBody].Empty() {
		w = cw
		line = cw.SelectedText(SubBody)
	} else {
		line = lastNonEmptyLine(w.Body.String())
	}
	line = strings.TrimSpace(line)
	if line == "" {
		h.appendErrors("Send: nothing to send\n")
		return
	}
	var out bytes.Buffer
	ctx := h.Shell.NewContext(&out, &out)
	ctx.FS = h.FS
	ctx.Dir = w.Dir()
	h.setHelpsel(ctx)
	h.Shell.Run(ctx, line)
	// Typescript behaviour: output lands in the window itself, after a
	// newline if the body does not end with one.
	body := w.Body
	if body.Len() > 0 && body.At(body.Len()-1) != '\n' {
		body.Insert(body.Len(), "\n")
	}
	body.Insert(body.Len(), out.String())
	body.Commit()
	w.scrollTo(body.Len())
	if !w.IsDir {
		w.RefreshTag()
	}
}

func lastNonEmptyLine(s string) string {
	lines := strings.Split(s, "\n")
	for i := len(lines) - 1; i >= 0; i-- {
		if strings.TrimSpace(lines[i]) != "" {
			return lines[i]
		}
	}
	return ""
}

// cloneCmd opens an additional window on w's file.
func (h *Help) cloneCmd(w *Window) {
	name := w.FileName()
	if name == "" {
		h.appendErrors("Clone!: window has no file name\n")
		return
	}
	if err := h.checkMem(w.Body.MemRunes()); err != nil {
		h.appendErrors(fmt.Sprintf("Clone!: %v\n", err))
		return
	}
	nw := h.newWindowIn(h.selectionColumn())
	nw.IsDir = w.IsDir
	// Structural clone: pieces and indexes copy, page data stays shared
	// and lazy, so cloning a paged gigabyte window never materializes
	// it (and a mem window copies runes once instead of encoding to a
	// string and decoding back).
	nw.Body.AdoptClone(w.Body)
	if w.Body.Modified() {
		nw.Body.SetDirty()
	}
	nw.SetNameTag(name)
	nw.fileGen = w.fileGen
	nw.bodyOrg = w.bodyOrg
	nw.Sel[SubBody] = w.Sel[SubBody]
}

// openCmd implements Open with the paper's default rules. With arguments,
// each is opened (name[:addr]), relative names resolved against the
// executing window's directory. With no argument, "it uses the file name
// containing the most recent selection", expanding a null selection to the
// surrounding file name and resolving relative names against the tag of
// the window containing the selection.
func (h *Help) openCmd(w *Window, args []string) {
	ctxWin := w
	if len(args) == 0 {
		cw, csub := h.current()
		if cw == nil {
			h.appendErrors("Open: no selection\n")
			return
		}
		buf := cw.Buffer(csub)
		sel := cw.Sel[csub]
		var name string
		if sel.Empty() {
			q0, q1 := expandFilename(buf, sel.Q0)
			name = buf.Slice(q0, q1-q0)
		} else {
			name = buf.Slice(sel.Q0, sel.Q1-sel.Q0)
		}
		name = strings.TrimSpace(name)
		if name == "" {
			h.appendErrors("Open: no file name at selection\n")
			return
		}
		args = []string{name}
		ctxWin = cw
	}
	for _, arg := range args {
		name, addr := SplitAddr(arg)
		name = h.absPathIn(ctxWin, name)
		if _, err := h.openFile(name, addr); err != nil {
			h.appendErrors(fmt.Sprintf("Open: %v\n", err))
		}
	}
}

// patternCmd searches the current window's body for a literal pattern,
// starting after the current selection and wrapping, then selects and
// shows the match. With no argument the snarf buffer is the pattern.
func (h *Help) patternCmd(args []string) {
	cw, _ := h.current()
	if cw == nil {
		h.appendErrors("Pattern: no current window\n")
		return
	}
	pat := strings.Join(args, " ")
	if pat == "" {
		pat = h.snarf
	}
	if pat == "" {
		h.appendErrors("Pattern: no pattern\n")
		return
	}
	body := cw.Body.String()
	runes := []rune(body)
	start := cw.Sel[SubBody].Q1
	idx := indexRunes(runes, []rune(pat), start)
	if idx < 0 {
		idx = indexRunes(runes, []rune(pat), 0) // wrap
	}
	if idx < 0 {
		h.appendErrors(fmt.Sprintf("Pattern: %q not found\n", pat))
		return
	}
	cw.Sel[SubBody] = Selection{idx, idx + len([]rune(pat))}
	cw.scrollTo(idx)
	h.setCurrent(cw, SubBody)
}

// indexRunes finds needle in hay at or after rune offset from.
func indexRunes(hay, needle []rune, from int) int {
	if from < 0 {
		from = 0
	}
	for i := from; i+len(needle) <= len(hay); i++ {
		match := true
		for j := range needle {
			if hay[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}

// textCmd types its argument over the current selection, leaving the
// insertion selected, so text can be entered without the keyboard.
func (h *Help) textCmd(s string) {
	cw, csub := h.current()
	if cw == nil {
		return
	}
	sel := cw.Sel[csub]
	buf := cw.Buffer(csub)
	buf.Commit()
	if !sel.Empty() {
		buf.Delete(sel.Q0, sel.Q1-sel.Q0)
	}
	buf.Insert(sel.Q0, s)
	buf.Commit()
	cw.Sel[csub] = Selection{sel.Q0, sel.Q0 + len([]rune(s))}
	if csub == SubBody && !cw.IsDir {
		cw.RefreshTag()
	}
}

// runExternal launches an external command under the context rules: "if
// the tag line of the window containing the command has a file name and
// the command does not begin with a slash, the directory of the file will
// be prepended to the command. If that command cannot be found locally, it
// will be searched for in the standard directory of program binaries. The
// standard input of the commands is connected to an empty file; the
// standard and error outputs are directed to ... Errors."
//
// The command runs in its own goroutine; output streams into Errors
// incrementally through the apply queue. $helpsel and any glob expansion
// are resolved here, under the actor lock, so the command sees the
// selection as it was at launch — a mid-command selection change cannot
// race a tool reading $helpsel. Runs under the actor lock; returns the
// registered proc.
func (h *Help) runExternal(w *Window, cmd string, fields []string) *proc {
	dir := w.Dir()
	out := procWriter{h}
	ctx := h.Shell.NewContext(out, out)
	// Name resolution and glob expansion below happen while holding the
	// lock, so they must use the raw view; the context is switched to the
	// serialized view before the goroutine starts.
	ctx.FS = h.FS
	ctx.Dir = dir
	h.setHelpsel(ctx)
	ctx.Kill = &shell.KillFlag{}
	ctx.Spawn = h.spawnBg

	// The paper lists "syntax for shell-like functionality such as I/O
	// redirection" as overdue; we provide it: a command containing shell
	// metacharacters (including both quote styles, so the paper's own
	// example "grep '^main' /sys/src/cmd/help/*.c" parses properly, and
	// &, so commands can background) runs as an rc script in the
	// window's directory context.
	if strings.ContainsAny(cmd, "|><`;'$\"&") {
		ctx.FS = h.safeFS
		return h.startProc(cmd, w.ID, ctx, func(c *shell.Context) int {
			return h.Shell.Run(c, cmd)
		})
	}

	name := fields[0]
	if !strings.HasPrefix(name, "/") {
		local := vfs.Clean(dir + "/" + name)
		if h.Shell.IsProgram(local) || h.FS.Exists(local) {
			name = local
		}
	}
	argv := []string{name}
	for _, a := range fields[1:] {
		argv = append(argv, h.Shell.ExpandGlobArg(ctx, a)...)
	}
	ctx.FS = h.safeFS
	return h.startProc(cmd, w.ID, ctx, func(c *shell.Context) int {
		return h.Shell.RunCommand(c, argv)
	})
}

// setHelpsel passes the current selection to the tool the way the paper
// describes: "help passes to an application the file and character offset
// of the mouse position ... through an environment variable, helpsel."
// The format is "windowID:q0,q1". Called under the actor lock at launch
// time, so the value is a snapshot: later selection changes don't leak
// into a running command.
func (h *Help) setHelpsel(ctx *shell.Context) {
	cw, csub := h.current()
	if cw == nil {
		return
	}
	sel := cw.Sel[csub]
	ctx.Set("helpsel", []string{fmt.Sprintf("%d:%d,%d", cw.ID, sel.Q0, sel.Q1)})
}

// current is the under-lock twin of Current.
func (h *Help) current() (*Window, int) { return h.curWin, h.curSub }

// absPath resolves a possibly-relative file name against w's directory.
func (h *Help) absPath(w *Window, name string) string {
	return h.absPathIn(w, name)
}

func (h *Help) absPathIn(w *Window, name string) string {
	if strings.HasPrefix(name, "/") {
		return vfs.Clean(name)
	}
	return vfs.Clean(w.Dir() + "/" + name)
}

// SplitAddr splits "name:addr" where addr is a line number (help.c:27),
// a character address (#123), or a pattern (/pat/) — the paper's
// error(1)-style syntax plus the "general locations" it mentions. Text
// with no address suffix returns addr "".
func SplitAddr(s string) (name, addr string) {
	i := strings.LastIndexByte(s, ':')
	if i < 0 || i == len(s)-1 {
		return s, ""
	}
	suffix := s[i+1:]
	if isLineNumber(suffix) || strings.HasPrefix(suffix, "#") || strings.HasPrefix(suffix, "/") {
		return s[:i], suffix
	}
	return s, ""
}

func isLineNumber(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return true
}

// expandWord grows a null selection at off to the surrounding run of
// non-whitespace, the default for execution.
func expandWord(buf *text.Buffer, off int) (int, int) {
	return expandClass(buf, off, func(r rune) bool { return !unicode.IsSpace(r) })
}

// expandFilename grows a null selection at off to the surrounding file
// name: the rule of automation ("it should be good enough just to point at
// a file name"). The character class covers path characters plus the
// :addr suffix.
func expandFilename(buf *text.Buffer, off int) (int, int) {
	return expandClass(buf, off, func(r rune) bool {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			return true
		}
		switch r {
		case '.', '/', '_', '-', '+', ':', '#':
			return true
		}
		return false
	})
}

// expandClass grows [off, off) to the maximal run of runes satisfying ok.
func expandClass(buf *text.Buffer, off int, ok func(rune) bool) (int, int) {
	n := buf.Len()
	if off > n {
		off = n
	}
	q0, q1 := off, off
	for q0 > 0 && ok(buf.At(q0-1)) {
		q0--
	}
	for q1 < n && ok(buf.At(q1)) {
		q1++
	}
	return q0, q1
}
