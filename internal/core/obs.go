package core

import (
	"fmt"

	"repro/internal/obs"
)

// instruments holds the pre-resolved observability handles the hot
// paths touch. Name lookup happens once, in SetObs; after that a
// counter bump is a single atomic add and, with observability off,
// every handle is nil (a no-op) and `on` gates the clock reads, so
// the uninstrumented paths pay nothing.
type instruments struct {
	on bool

	gestures      *obs.Counter
	execBuiltin   *obs.Counter
	execExternal  *obs.Counter
	renders       *obs.Counter
	rendersFull   *obs.Counter
	colsRepainted *obs.Counter
	colsReused    *obs.Counter
	cellsTouched  *obs.Counter

	// applied counts mutations drained off the apply queue;
	// procsStarted counts external commands launched.
	applied      *obs.Counter
	procsStarted *obs.Counter

	gestureHist *obs.Histogram
	execHist    *obs.Histogram
	renderHist  *obs.Histogram
	procHist    *obs.Histogram // external command wall-clock duration

	gestureTick uint
	renderTick  uint
}

// sampleEvery is the hot-path timing sample rate. Counters count every
// event; the clock reads and span allocation behind the gesture and
// render histograms happen for one event in sampleEvery, because at
// ~1µs per gesture two time.Now calls are a measurable fraction of the
// thing being measured. The ticks live on the event loop, so sampling
// is deterministic, and the first event is always sampled — a single
// gesture still leaves a span in the trace.
const sampleEvery = 8

func (ins *instruments) sampleGesture() bool {
	ins.gestureTick++
	return ins.gestureTick%sampleEvery == 1
}

func (ins *instruments) sampleRender() bool {
	ins.renderTick++
	return ins.renderTick%sampleEvery == 1
}

// SetObs installs (or, with nil, removes) the observability registry:
// gesture/exec/render spans and histograms, damage accounting, and the
// interaction gauges, propagated to the namespace's lookup/bind
// counters as well. New installs a fresh registry by default; SetObs
// exists so benchmarks and embedders can swap or disable it.
func (h *Help) SetObs(r *obs.Registry) {
	h.Obs = r
	if h.FS != nil {
		h.FS.SetObs(r)
	}
	h.Notify.SetObs(r)
	if r == nil {
		h.ins = instruments{}
		return
	}
	// The bus doubles as the registry's span sink: trace spans and
	// fault/panic events stream into /mnt/help/log alongside the state
	// changes, so one subscription observes everything.
	r.SetSink(h.Notify.Sink())
	h.ins = instruments{
		on:            true,
		gestures:      r.Counter("core.gestures"),
		execBuiltin:   r.Counter("core.exec.builtin"),
		execExternal:  r.Counter("core.exec.external"),
		renders:       r.Counter("core.renders"),
		rendersFull:   r.Counter("core.renders.full"),
		colsRepainted: r.Counter("core.render.cols_repainted"),
		colsReused:    r.Counter("core.render.cols_reused"),
		cellsTouched:  r.Counter("core.render.cells"),
		applied:       r.Counter("core.queue.applied"),
		procsStarted:  r.Counter("core.procs.started"),
		gestureHist:   r.Histogram("gesture"),
		execHist:      r.Histogram("exec"),
		renderHist:    r.Histogram("render"),
		procHist:      r.Histogram("proc"),
	}
	// The interaction metrics live on Help as always-on atomics (so
	// Metrics() is a consistent snapshot regardless of registry state);
	// gauges expose them in /mnt/help/stats without double counting.
	r.Gauge("core.presses", h.mPresses.Load)
	r.Gauge("core.travel", h.mTravel.Load)
	r.Gauge("core.keystrokes", h.mKeystrokes.Load)
	r.Gauge("core.commands", h.mCommands.Load)
	// The running-command gauge reads an always-on atomic, and queue
	// depth reads len() of the apply channel: both are safe from the
	// stats goroutine without the actor lock.
	r.Gauge("core.procs.running", h.mProcsLive.Load)
	r.Gauge("core.queue.depth", func() int64 { return int64(len(h.applyq)) })
}

// SetStatsPath records where helpfs mounted the stats file, so the
// Metrics built-in can open it as a window.
func (h *Help) SetStatsPath(p string) { h.statsPath = p }

// metricsCmd implements the Metrics built-in: open (or reveal) the
// mounted stats file in a window and reload it, so each execution
// shows live numbers. Runs under the actor lock.
func (h *Help) metricsCmd() {
	if h.statsPath == "" {
		h.appendErrors("Metrics: no stats file mounted\n")
		return
	}
	w, err := h.openFile(h.statsPath, "")
	if err != nil {
		h.appendErrors(fmt.Sprintf("Metrics: %v\n", err))
		return
	}
	if err := h.get(w); err != nil {
		h.appendErrors(fmt.Sprintf("Metrics: %v\n", err))
	}
}
