package core

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/draw"
	"repro/internal/event"
	"repro/internal/geom"
	"repro/internal/notify"
	"repro/internal/obs"
	"repro/internal/shell"
	"repro/internal/vfs"
)

// minVisible is the smallest useful window: a tag line plus two body rows.
// The placement heuristic falls through its stages when less than this
// would remain visible.
const minVisible = 3

// Column is one vertical column of windows. Its left edge carries the
// tower of tabs, "one per window ... visible or invisible, in order from
// top to bottom of the column".
type Column struct {
	r    geom.Rect // includes the tab strip
	wins []*Window // ordered by top row; hidden windows keep their slot
}

// winRect returns the rectangle available to windows (excluding tabs).
func (c *Column) winRect() geom.Rect {
	r := c.r
	r.Min.X++
	return r
}

// displayed returns the non-hidden windows ordered by top row.
func (c *Column) displayed() []*Window {
	var out []*Window
	for _, w := range c.wins {
		if !w.hidden {
			out = append(out, w)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].top < out[j].top })
	return out
}

// visibleSpan returns the number of rows window w currently shows: from
// its top to the top of the next displayed window below (or the column
// bottom). Zero if hidden or fully covered.
func (c *Column) visibleSpan(w *Window) int {
	if w.hidden {
		return 0
	}
	bottom := c.r.Max.Y
	for _, o := range c.displayed() {
		if o != w && o.top > w.top && o.top < bottom {
			bottom = o.top
		}
	}
	span := bottom - w.top
	if span < 0 {
		return 0
	}
	return span
}

// lowestUsedRow returns the row just below the lowest visible text in the
// column, where the placement heuristic first tries to put a new tag.
func (c *Column) lowestUsedRow() int {
	low := c.r.Min.Y
	for _, w := range c.displayed() {
		span := c.visibleSpan(w)
		if span <= 0 {
			continue
		}
		used := 1 + w.Body.NLines() // tag plus body lines
		if used > span {
			used = span
		}
		if w.top+used > low {
			low = w.top + used
		}
	}
	return low
}

// sortWins keeps the slice ordered by top row so the tab tower mirrors
// vertical order.
func (c *Column) sortWins() {
	sort.SliceStable(c.wins, func(i, j int) bool { return c.wins[i].top < c.wins[j].top })
}

// Metrics aggregates the interaction accounting the paper's claims are
// checked against.
type Metrics struct {
	Presses    int // mouse button-down transitions ("button clicks")
	Travel     int // pointer travel, Manhattan cells
	Keystrokes int // runes typed
	Commands   int // commands executed via the middle button
}

// Help is the program: the screen, the namespace, the shell, the columns
// of windows, and the single snarf buffer.
//
// Help is an actor: every mutation happens while holding mu, the actor
// lock. Exported methods take the lock at the boundary and delegate to
// unexported twins; internal code and device handlers (which already run
// under the lock, via the serialized vfs view from SafeFS) call the twins
// directly. Commands run in their own goroutines and feed output back as
// closures on the apply queue, drained under the lock in FIFO order.
type Help struct {
	// mu is the actor lock serializing all state mutation. FS is the raw
	// namespace view, only ever used while holding mu; safeFS is the
	// locking view handed to off-loop code (commands, srvnet, the repl).
	mu     sync.Mutex
	safeFS *vfs.FS

	FS     *vfs.FS
	Shell  *shell.Shell
	screen *draw.Screen
	cols   []*Column

	// applyq is the apply queue: mutations enqueued by command goroutines
	// (output chunks, reaps), drained under mu by a lazily started
	// drainer. loopActive is its run state (0 idle, 1 draining).
	applyq     chan func()
	loopActive atomic.Int32

	// procs is the registry of live external commands; procIdle is
	// broadcast on every reap so WaitIdle can wait for quiescence.
	procs    map[int]*proc
	procSeq  int
	procIdle *sync.Cond

	byID   map[int]*Window
	nextID int

	// current selection ownership: the subwindow "with the most recent
	// selection or typed text"; its selection paints in reverse video,
	// all others in outline.
	curWin *Window
	curSub int

	snarf string

	machine event.Machine
	mousePt geom.Point // last pointer position, for typing dispatch

	// Obs is the observability registry: counters, latency histograms,
	// and the trace ring served by helpfs under /mnt/help. New installs
	// one by default; SetObs replaces or disables it.
	Obs *obs.Registry
	ins instruments

	// Notify is the session event bus: one line per observable state
	// change (window create/close, body and tag edits, command
	// execution), published from the choke points under the actor lock
	// and consumed by the event files helpfs serves, the Watch built-in,
	// and srvnet's readwait long polls. Publishing never blocks — a slow
	// reader overflows its own ring, never the actor — so emission is
	// safe on every hot path. New installs it; it is never nil.
	Notify *notify.Bus

	// Interaction accounting mirrors into atomics after every event so
	// Metrics() is a consistent snapshot from any goroutine while the
	// event loop runs.
	mPresses    obs.Counter
	mTravel     obs.Counter
	mKeystrokes obs.Counter
	mCommands   obs.Counter

	// mProcsLive mirrors len(h.procs) as an always-on atomic so the
	// stats goroutine's running-command gauge never needs the lock.
	mProcsLive obs.Counter

	// mWindows mirrors len(h.byID) the same way, so a session manager
	// can list many sessions without taking every actor lock.
	mWindows obs.Counter

	// mMemRunes mirrors the summed resident rune count of every live
	// window buffer (tags and bodies), maintained through each buffer's
	// SetOnMem hook (installed by trackWindow). Always-on atomic for
	// the same reason as mWindows: the daemon's budget governor sums
	// sessions without taking every actor lock.
	mMemRunes obs.Counter

	// maxProcs and errorsCap are the per-session resource bounds
	// installed by SetLimits; errorsCap is always positive. maxBytes
	// caps the session's resident buffer bytes (0: unlimited).
	maxProcs  int
	errorsCap int
	maxBytes  int64

	// maxResident is the paged-text threshold and per-buffer residency
	// cap: bodies larger than this open as piece tables over lazily
	// paged-in file segments instead of being materialized (0: paging
	// disabled, every body loads whole).
	maxResident int64

	// memGate and procGate are daemon-wide admission checks installed
	// by the session manager: consulted before a large body load or a
	// command launch, they refuse with a typed busy error when the
	// whole process's budget — not just this session's — is spent.
	memGate  func(addBytes int64) error
	procGate func() error

	// statsPath is where helpfs serves the flat stats file, for the
	// Metrics built-in.
	statsPath string

	errors *Window // the Errors window, created on demand

	// sweepExec is the live middle-button sweep, painted underlined.
	sweepExec *execSweep

	// lastColSigs holds each column's signature from the previous
	// Render; a column whose signature is unchanged is not repainted.
	lastColSigs []colSig
	rendered    bool // a full render has happened at least once

	// OnWindowCreated and OnWindowClosed notify observers (the helpfs
	// file service) when windows come and go.
	OnWindowCreated func(*Window)
	OnWindowClosed  func(*Window)

	// OnCrash, when set, is told about every recovered panic after the
	// journal has been flushed and the crash report written. It runs
	// with the actor lock held: implementations must not call back into
	// locking methods of this Help, and must not block. The
	// multi-session daemon uses it to mark the session crashed while
	// the rest keep serving.
	OnCrash func(where string, err error)

	// rec is the session journal recorder, nil unless AttachJournal
	// has connected one; panicCount tallies panics the event-loop and
	// executor guards have recovered.
	rec        *Recorder
	panicCount int

	// exitPending arms the two-step Exit: set when Exit was refused
	// over unsaved windows or live commands, cleared by any other command.
	exitPending bool

	exited atomic.Bool
}

// New creates a help instance on a w x h cell screen over the given
// namespace and shell, with two empty columns (the boot arrangement).
func New(fs *vfs.FS, sh *shell.Shell, w, h int) *Help {
	h9 := &Help{
		FS:     fs,
		Shell:  sh,
		screen: draw.NewScreen(w, h),
		byID:   map[int]*Window{},
		nextID: 1,
		applyq: make(chan func(), 256),
		procs:  map[int]*proc{},
		Notify: notify.New(),
	}
	h9.errorsCap = defaultErrorsCap
	h9.maxResident = DefaultMaxResident
	h9.safeFS = fs.Serialized(&h9.mu)
	h9.procIdle = sync.NewCond(&h9.mu)
	// Row 0 is the column tab row; columns split the rest side by side.
	mid := w / 2
	h9.cols = []*Column{
		{r: geom.Rt(0, 1, mid, h)},
		{r: geom.Rt(mid, 1, w, h)},
	}
	h9.SetObs(obs.New())
	return h9
}

// Screen returns the display, rendered by Render.
func (h *Help) Screen() *draw.Screen { return h.screen }

// SafeFS returns the serialized namespace view: same tree as FS, but
// every operation takes the actor lock. Off-loop code — commands, srvnet
// servers, tests poking the namespace concurrently — must use this view.
func (h *Help) SafeFS() *vfs.FS { return h.safeFS }

// Exited reports whether Exit has been executed. Lock-free.
func (h *Help) Exited() bool { return h.exited.Load() }

// Metrics returns the current interaction accounting. It reads only
// atomics mirrored after each event, so it is safe to call from any
// goroutine while the event loop runs.
func (h *Help) Metrics() Metrics {
	return Metrics{
		Presses:    int(h.mPresses.Load()),
		Travel:     int(h.mTravel.Load()),
		Keystrokes: int(h.mKeystrokes.Load()),
		Commands:   int(h.mCommands.Load()),
	}
}

// Columns returns the number of columns.
func (h *Help) Columns() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.cols)
}

// Windows returns all windows ordered by id.
func (h *Help) Windows() []*Window {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.windows()
}

func (h *Help) windows() []*Window {
	out := make([]*Window, 0, len(h.byID))
	for _, w := range h.byID {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Window returns the window with the given id, or nil.
func (h *Help) Window(id int) *Window {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.byID[id]
}

// WindowByName returns the window whose tag names file, or nil. ("If the
// file is already open, the command just guarantees that its window is
// visible.")
func (h *Help) WindowByName(name string) *Window {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.windowByName(name)
}

func (h *Help) windowByName(name string) *Window {
	name = vfs.Clean(name)
	for _, w := range h.windows() {
		wn := w.FileName()
		if wn == "" {
			continue
		}
		if vfs.Clean(strings.TrimSuffix(wn, "/")) == strings.TrimSuffix(name, "/") {
			return w
		}
	}
	return nil
}

// Current returns the window and subwindow owning the current selection.
func (h *Help) Current() (*Window, int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.curWin, h.curSub
}

// SetCurrent makes (w, sub) the owner of the current selection.
func (h *Help) SetCurrent(w *Window, sub int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.setCurrent(w, sub)
}

func (h *Help) setCurrent(w *Window, sub int) {
	h.curWin, h.curSub = w, sub
}

// Snarf returns the snarf (cut) buffer contents.
func (h *Help) Snarf() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.snarf
}

// colAt returns the column containing point p, defaulting to the last.
func (h *Help) colAt(p geom.Point) *Column {
	for _, c := range h.cols {
		if p.In(c.r) {
			return c
		}
	}
	return h.cols[len(h.cols)-1]
}

// colOf returns the column of w (its own, or the first as fallback).
func (h *Help) colOf(w *Window) *Column {
	if w != nil && w.col != nil {
		return w.col
	}
	return h.cols[0]
}

// selectionColumn returns the column containing the current selection,
// where the placement heuristic puts new windows.
func (h *Help) selectionColumn() *Column {
	if h.curWin != nil && h.curWin.col != nil {
		return h.curWin.col
	}
	return h.cols[0]
}

// NewWindow creates an empty window placed by the heuristic in the column
// of the current selection.
func (h *Help) NewWindow() *Window {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.newWindowIn(h.selectionColumn())
}

// NewWindowIn creates an empty window in column index ci.
func (h *Help) NewWindowIn(ci int) *Window {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.newWindowInCol(ci)
}

func (h *Help) newWindowInCol(ci int) *Window {
	if ci < 0 || ci >= len(h.cols) {
		ci = 0
	}
	return h.newWindowIn(h.cols[ci])
}

func (h *Help) newWindowIn(col *Column) *Window {
	w := newWindow(h.nextID)
	h.nextID++
	h.byID[w.ID] = w
	h.mWindows.Add(1)
	h.trackWindow(w)
	h.place(w, col)
	if h.OnWindowCreated != nil {
		h.OnWindowCreated(w)
	}
	// After OnWindowCreated: by the time a subscriber reacts to the
	// event, the window's files exist under /mnt/help/<n>/.
	h.Notify.Publish(w.ID, "new", "")
	return w
}

// place runs the paper's placement heuristic, quoted from the Discussion:
//
//	"first ... place the new window at the bottom of the column containing
//	the selection. It places the tag of the window immediately below the
//	lowest visible text already in the column. If that would leave too
//	little of the new window visible, the new window is placed to cover
//	half of the lowest window in the column. If that would still leave too
//	little visible, the new window is positioned over the bottom 25% of
//	the column ... which may entail hiding some windows entirely."
func (h *Help) place(w *Window, col *Column) {
	w.col = col
	w.hidden = false
	top := col.lowestUsedRow()
	if col.r.Max.Y-top < minVisible {
		// Stage two: cover half of the lowest window.
		if disp := col.displayed(); len(disp) > 0 {
			lowest := disp[len(disp)-1]
			span := col.visibleSpan(lowest)
			top = lowest.top + span/2
		}
		if col.r.Max.Y-top < minVisible {
			// Stage three: the bottom 25% of the column.
			top = col.r.Max.Y - col.r.Dy()/4
			if col.r.Max.Y-top < minVisible {
				top = col.r.Max.Y - minVisible
			}
			if top < col.r.Min.Y {
				top = col.r.Min.Y
			}
			// Hide windows this placement covers completely.
			for _, o := range col.displayed() {
				if o != w && o.top >= top {
					o.hidden = true
				}
			}
		}
	}
	w.top = top
	col.wins = append(col.wins, w)
	col.sortWins()
}

// Reveal makes w fully visible "from the tag to the bottom of the column
// it is in", the action of clicking its tab: windows displayed below it
// are covered entirely.
func (h *Help) Reveal(w *Window) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.reveal(w)
}

func (h *Help) reveal(w *Window) {
	col := h.colOf(w)
	w.hidden = false
	if w.top >= col.r.Max.Y-1 {
		w.top = col.r.Max.Y - minVisible
		if w.top < col.r.Min.Y {
			w.top = col.r.Min.Y
		}
	}
	for _, o := range col.wins {
		if o != w && !o.hidden && o.top >= w.top {
			o.hidden = true
		}
	}
	col.sortWins()
}

// MoveWindow drags w so its tag lands at p, possibly into another column,
// then does "whatever local rearrangement is necessary": nudging windows
// off the exact row, keeping the tag visible, or covering windows that no
// longer fit.
func (h *Help) MoveWindow(w *Window, p geom.Point) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.moveWindow(w, p)
}

func (h *Help) moveWindow(w *Window, p geom.Point) {
	dst := h.colAt(p)
	src := h.colOf(w)
	if src != dst {
		src.removeWindow(w)
		dst.wins = append(dst.wins, w)
		w.col = dst
	}
	top := p.Y
	if top < dst.r.Min.Y {
		top = dst.r.Min.Y
	}
	if top > dst.r.Max.Y-1 {
		top = dst.r.Max.Y - 1
	}
	w.top = top
	w.hidden = false
	// Local rearrangement: other displayed windows sharing the row are
	// nudged down; if they fall off the column they are hidden, keeping at
	// least w's tag fully visible.
	for _, o := range dst.displayed() {
		if o == w {
			continue
		}
		if o.top == w.top {
			o.top = w.top + 1
		}
		if o.top >= dst.r.Max.Y {
			o.hidden = true
		}
	}
	dst.sortWins()
}

// MoveWindowToColumn moves w into column index ci, re-running the
// placement heuristic there; used when booting tools into the right-hand
// column.
func (h *Help) MoveWindowToColumn(w *Window, ci int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.moveWindowToColumn(w, ci)
}

func (h *Help) moveWindowToColumn(w *Window, ci int) {
	if ci < 0 || ci >= len(h.cols) {
		return
	}
	dst := h.cols[ci]
	src := h.colOf(w)
	if src == dst {
		return
	}
	src.removeWindow(w)
	h.place(w, dst)
}

func (c *Column) removeWindow(w *Window) {
	for i, o := range c.wins {
		if o == w {
			c.wins = append(c.wins[:i], c.wins[i+1:]...)
			return
		}
	}
}

// CloseWindow removes w from the screen and the window table.
func (h *Help) CloseWindow(w *Window) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closeWindow(w)
}

func (h *Help) closeWindow(w *Window) {
	if h.byID[w.ID] != w {
		return // already closed
	}
	h.colOf(w).removeWindow(w)
	delete(h.byID, w.ID)
	h.mWindows.Add(-1)
	h.untrackWindow(w)
	if h.curWin == w {
		h.curWin = nil
	}
	if h.errors == w {
		h.errors = nil
	}
	if h.OnWindowClosed != nil {
		h.OnWindowClosed(w)
	}
	h.Notify.Publish(w.ID, "del", w.FileName())
}

// ExpandColumn gives column ci two thirds of the screen width, the action
// of the tab row "across the top of the columns [that] allows the columns
// to expand horizontally".
func (h *Help) ExpandColumn(ci int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.expandColumn(ci)
}

func (h *Help) expandColumn(ci int) {
	if len(h.cols) != 2 || ci < 0 || ci > 1 {
		return
	}
	w := h.screen.Bounds().Dx()
	split := w / 3
	if ci == 0 {
		split = 2 * w / 3
	}
	h.cols[0].r.Max.X = split
	h.cols[1].r.Min.X = split
}

// execSweep is an in-progress middle-button sweep.
type execSweep struct {
	win    *Window
	sub    int
	q0, q1 int
}

// Errors returns the Errors window, creating it if needed: "the standard
// and error outputs are directed to a special window, called Errors, that
// will be created automatically if needed."
func (h *Help) Errors() *Window {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.errorsWin()
}

// ErrorsText snapshots the Errors window's body under the actor lock,
// without creating the window. Observers polling a running command's
// streamed output use it; reading the window pointer's buffer directly
// would race with the command's enqueued appends.
func (h *Help) ErrorsText() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.errors == nil || h.byID[h.errors.ID] == nil {
		return ""
	}
	return h.errors.Body.String()
}

func (h *Help) errorsWin() *Window {
	if h.errors != nil && h.byID[h.errors.ID] != nil {
		return h.errors
	}
	w := h.newWindowIn(h.selectionColumn())
	w.Tag.SetString("Errors\tClose!")
	w.Tag.SetClean()
	h.errors = w
	return w
}

// defaultErrorsCap bounds the Errors window body (in runes): a chatty
// failing command trims old output from the front instead of eating
// memory. SetLimits can lower it per session.
const defaultErrorsCap = 64 * 1024

// Limits are per-session resource bounds. A zero field keeps the
// current value. They exist so one runaway session in a multi-session
// process degrades visibly — refused commands, trimmed logs — instead
// of eating the memory every other session runs in.
type Limits struct {
	// MaxProcs caps live external commands; further launches are
	// refused with a line in Errors. Negative means unlimited.
	MaxProcs int
	// ErrorsCap caps the Errors window body, in runes.
	ErrorsCap int
	// QueueDepth resizes the apply queue. Only honored while the
	// session is quiescent (no commands in flight); set it right after
	// New, before serving.
	QueueDepth int
	// MaxBytes caps the session's resident buffer bytes (tags plus
	// bodies, at MemBytesPerRune per rune): a body load that would
	// exceed it is refused with a typed busy error instead of letting
	// one session opening huge files starve its neighbors. Negative
	// means unlimited.
	MaxBytes int64
	// MaxResident sets the paged-text threshold and per-buffer
	// residency cap: files larger than this open as paged piece tables
	// holding at most this many resident bytes of text. Zero keeps the
	// current value (DefaultMaxResident after New); negative disables
	// paging so every body materializes, the pre-paging behavior.
	MaxResident int64
}

// SetLimits installs per-session resource bounds.
func (h *Help) SetLimits(l Limits) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if l.MaxProcs != 0 {
		h.maxProcs = l.MaxProcs
	}
	if l.ErrorsCap > 0 {
		h.errorsCap = l.ErrorsCap
	}
	if l.MaxBytes != 0 {
		h.maxBytes = l.MaxBytes
		if l.MaxBytes < 0 {
			h.maxBytes = 0
		}
	}
	if l.MaxResident != 0 {
		h.maxResident = l.MaxResident
		if l.MaxResident < 0 {
			h.maxResident = 0
		}
	}
	if l.QueueDepth > 0 && l.QueueDepth != cap(h.applyq) &&
		h.loopActive.Load() == 0 && len(h.applyq) == 0 && len(h.procs) == 0 {
		h.applyq = make(chan func(), l.QueueDepth)
	}
}

// SetMemGate installs (or, with nil, removes) the daemon-wide memory
// admission check: consulted with the projected resident-byte increase
// before a large body load, it refuses — typically with a
// vfs.BusyError carrying a retry-after hint — when the whole process's
// budget is spent. Loads below memGateRunes skip the consult, so
// keystroke-sized edits never contend on the daemon's totals.
func (h *Help) SetMemGate(fn func(addBytes int64) error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.memGate = fn
}

// SetProcGate installs (or, with nil, removes) the daemon-wide command
// admission check, consulted after the per-session MaxProcs bound.
func (h *Help) SetProcGate(fn func() error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.procGate = fn
}

// MemBytesPerRune is the resident cost of one buffered rune: gap
// buffers store runes, four bytes each.
const MemBytesPerRune = 4

// memGateRunes is the load size below which checkMem skips the daemon
// gate: per-keystroke edits must not consult (and contend on) the
// process-wide budget.
const memGateRunes = 1024

// trackWindow wires w's buffers into the session's resident-size
// accounting. Installed at both window-creation choke points (newWindowIn
// and the recovery path's adoptWindow); untrackWindow reverses it.
func (h *Help) trackWindow(w *Window) {
	h.mMemRunes.Add(int64(w.Tag.MemRunes() + w.Body.MemRunes()))
	w.Tag.SetOnMem(func(d int) { h.mMemRunes.Add(int64(d)) })
	w.Body.SetOnMem(func(d int) { h.mMemRunes.Add(int64(d)) })
}

func (h *Help) untrackWindow(w *Window) {
	w.Tag.SetOnMem(nil)
	w.Body.SetOnMem(nil)
	h.mMemRunes.Add(-int64(w.Tag.MemRunes() + w.Body.MemRunes()))
}

// checkMem is the memory admission check for a body load of addRunes
// runes (callers may pass a byte count: runes never exceed UTF-8
// bytes, so the check errs refusing). It consults the session's
// MaxBytes cap and, for large loads, the daemon-wide gate. Runs under
// the actor lock.
func (h *Help) checkMem(addRunes int) error {
	if addRunes <= 0 {
		return nil
	}
	addBytes := int64(addRunes) * MemBytesPerRune
	if h.maxBytes > 0 && h.mMemRunes.Load()*MemBytesPerRune+addBytes > h.maxBytes {
		h.Obs.Counter("core.mem.refused").Inc()
		h.Obs.Event("limit", fmt.Sprintf("load of %d bytes refused: session memory limit %d", addBytes, h.maxBytes))
		return &vfs.BusyError{Msg: fmt.Sprintf("core: session memory limit (%d bytes) reached", h.maxBytes)}
	}
	if h.memGate != nil && addRunes >= memGateRunes {
		if err := h.memGate(addBytes); err != nil {
			h.Obs.Counter("core.mem.refused").Inc()
			return err
		}
	}
	return nil
}

// WindowCount reports the number of windows without taking the actor
// lock; it is maintained as an atomic alongside the window table.
func (h *Help) WindowCount() int { return int(h.mWindows.Load()) }

// ProcCount reports the number of live external commands, lock-free.
func (h *Help) ProcCount() int { return int(h.mProcsLive.Load()) }

// MemBytes reports the session's resident buffer bytes, lock-free; it
// is maintained as an atomic through the buffers' SetOnMem hooks.
func (h *Help) MemBytes() int64 { return h.mMemRunes.Load() * MemBytesPerRune }

// AppendErrors appends text to the Errors window, trimming from the
// front — at a line boundary when possible — once the body exceeds
// errorsCap.
func (h *Help) AppendErrors(s string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.appendErrors(s)
}

func (h *Help) appendErrors(s string) {
	if s == "" {
		return
	}
	w := h.errorsWin()
	w.Body.Insert(w.Body.Len(), s)
	w.Body.Commit()
	if over := w.Body.Len() - h.errorsCap; over > 0 {
		cut := over
		// Round the cut up to the next line start so the window never
		// opens mid-line; one huge line falls back to an exact trim.
		ln := w.Body.LineAt(cut)
		if ls := w.Body.LineStart(ln); ls < cut {
			if next := w.Body.LineStart(ln + 1); next < w.Body.Len() {
				cut = next
			}
		}
		w.Body.Delete(0, cut)
		w.Body.Commit()
		sel := w.Sel[SubBody]
		w.Sel[SubBody] = clampSel(Selection{sel.Q0 - cut, sel.Q1 - cut}, w.Body.Len())
		if w.bodyOrg > cut {
			w.bodyOrg -= cut
		} else {
			w.bodyOrg = 0
		}
	}
	// Keep the tail visible, like a log.
	w.scrollTo(w.Body.Len())
}

// ReportFault surfaces a background-service failure in the Errors
// window — the paper's channel for asynchronous trouble — so a dead CPU
// server or a failing mount degrades visibly instead of silently. The
// source names the service ("remote", "mail"); the error is printed
// after it.
func (h *Help) ReportFault(source string, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.reportFault(source, err)
}

func (h *Help) reportFault(source string, err error) {
	if err == nil {
		h.Obs.Event("fault", source+": ok")
		h.appendErrors(fmt.Sprintf("%s: ok\n", source))
		return
	}
	h.Obs.Event("fault", fmt.Sprintf("%s: %v", source, err))
	h.appendErrors(fmt.Sprintf("%s: %v\n", source, err))
}

// OpenFile opens name (already absolute) in a window, reusing an existing
// window for the same file. addr optionally positions the view
// ("help.c:27"). It returns the window.
func (h *Help) OpenFile(name, addr string) (*Window, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.openFile(name, addr)
}

func (h *Help) openFile(name, addr string) (*Window, error) {
	// Callers outside the event loop (the repl, helpfs) reach OpenFile
	// directly, so it sweeps the journal itself.
	defer h.JournalSweep()
	name = vfs.Clean(name)
	if w := h.windowByName(name); w != nil {
		h.reveal(w)
		if addr != "" {
			if err := w.ShowAddr(addr); err != nil {
				return w, err
			}
		}
		return w, nil
	}
	info, err := h.FS.Stat(name)
	if err != nil {
		return nil, err
	}
	w := h.newWindowIn(h.selectionColumn())
	if info.IsDir {
		// "When a directory is Opened, help puts its name, including a
		// final slash, in the tag and just lists the contents in the
		// body."
		listing, err := h.dirListing(name)
		if err != nil {
			h.closeWindow(w)
			return nil, err
		}
		if err := h.checkMem(len(listing)); err != nil {
			h.closeWindow(w)
			return nil, err
		}
		w.IsDir = true
		// Load, not a fresh buffer: the journal's splice hook (and any
		// other observer) must survive adopting the contents.
		w.Body.Load(listing)
		w.SetNameTag(name + "/")
		return w, nil
	}
	if h.pagedEligible(info) {
		// Large file: point the body at the file instead of slurping it.
		// Any indexing failure falls back to the materialized path.
		if err := h.loadPagedBody(w, name, info); err == nil {
			w.SetNameTag(name)
			if addr != "" {
				if err := w.ShowAddr(addr); err != nil {
					return w, err
				}
			}
			return w, nil
		}
	}
	data, gen, err := h.FS.ReadFileGen(name)
	if err != nil {
		h.closeWindow(w)
		return nil, err
	}
	if err := h.checkMem(len(data)); err != nil {
		h.closeWindow(w)
		return nil, err
	}
	w.Body.Load(string(data))
	w.fileGen = gen
	w.SetNameTag(name)
	if addr != "" {
		if err := w.ShowAddr(addr); err != nil {
			return w, err
		}
	}
	return w, nil
}

func (h *Help) dirListing(name string) (string, error) {
	f, err := h.FS.Open(name, vfs.OREAD)
	if err != nil {
		return "", err
	}
	defer f.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(f); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// Get reloads w's body from its file, discarding edits.
func (h *Help) Get(w *Window) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.get(w)
}

func (h *Help) get(w *Window) error {
	name := w.FileName()
	if name == "" {
		return fmt.Errorf("window %d has no file name", w.ID)
	}
	if w.IsDir || strings.HasSuffix(name, "/") {
		listing, err := h.dirListing(strings.TrimSuffix(name, "/"))
		if err != nil {
			return err
		}
		if err := h.checkMem(len(listing) - w.Body.Len()); err != nil {
			return err
		}
		w.Body.SetString(listing)
		w.Body.SetClean()
		w.Sel[SubBody] = clampSel(w.Sel[SubBody], w.Body.Len())
		w.RefreshTag()
		return nil
	}
	info, err := h.FS.Stat(name)
	if err != nil {
		return err
	}
	// Diff-aware reload: when the file carries a generation and it has
	// not moved since this window last loaded or put it, and the buffer
	// holds no local edits, the re-read would reproduce the buffer
	// byte for byte — skip it entirely.
	if info.Gen != 0 && info.Gen == w.fileGen && !w.Body.Modified() {
		h.Obs.Counter("core.get.unchanged").Inc()
		w.RefreshTag()
		return nil
	}
	if h.pagedEligible(info) || w.Body.Paged() {
		// Large files reload as a fresh paged view; a window that is
		// already paged stays paged even if the file shrank, keeping
		// its budget behavior stable.
		if err := h.loadPagedBody(w, name, info); err != nil {
			return err
		}
		w.Sel[SubBody] = clampSel(w.Sel[SubBody], w.Body.Len())
		w.RefreshTag()
		return nil
	}
	data, gen, err := h.FS.ReadFileGen(name)
	if err != nil {
		return err
	}
	if err := h.checkMem(len(data) - w.Body.Len()); err != nil {
		return err
	}
	w.Body.SetString(string(data))
	w.Body.SetClean()
	w.fileGen = gen
	w.Sel[SubBody] = clampSel(w.Sel[SubBody], w.Body.Len())
	w.RefreshTag()
	return nil
}

// Put writes w's body to its file (or to name if given) and marks the
// window clean, removing Put! from the tag.
func (h *Help) Put(w *Window, name string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.put(w, name)
}

func (h *Help) put(w *Window, name string) error {
	if name == "" {
		name = w.FileName()
	}
	if name == "" {
		return fmt.Errorf("window %d has no file name", w.ID)
	}
	if err := h.FS.WriteFile(vfs.Clean(name), []byte(w.Body.String())); err != nil {
		return err
	}
	w.Body.SetClean()
	// The buffer now matches the file at its post-write generation, so
	// a Get with no further changes can skip the re-read.
	w.fileGen = h.FS.Gen(vfs.Clean(name))
	w.SetNameTag(vfs.Clean(name))
	return nil
}
