package core

import (
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/geom"
)

// pointOf locates the first occurrence of needle in w's body on screen.
// Render must have run.
func pointOf(t *testing.T, h *Help, w *Window, needle string) geom.Point {
	t.Helper()
	h.Render()
	body := w.Body.String()
	off := strings.Index(body, needle)
	if off < 0 {
		t.Fatalf("%q not in body %q", needle, body)
	}
	roff := len([]rune(body[:off]))
	f := w.frameFor(SubBody)
	if f == nil {
		t.Fatal("no body frame")
	}
	if !f.Visible(roff) {
		w.scrollTo(roff)
		h.Render()
		f = w.frameFor(SubBody)
	}
	p, ok := f.PointOf(roff)
	if !ok {
		t.Fatalf("offset %d of %q not visible", roff, needle)
	}
	return p
}

// tagPointOf locates needle in w's tag on screen.
func tagPointOf(t *testing.T, h *Help, w *Window, needle string) geom.Point {
	t.Helper()
	h.Render()
	tag := w.Tag.String()
	off := strings.Index(tag, needle)
	if off < 0 {
		t.Fatalf("%q not in tag %q", needle, tag)
	}
	p, ok := w.frameFor(SubTag).PointOf(len([]rune(tag[:off])))
	if !ok {
		t.Fatalf("tag offset not visible")
	}
	return p
}

func TestSweepSelectsText(t *testing.T) {
	h, _ := world(t)
	w, _ := h.OpenFile("/usr/rob/src/help/help.c", "")
	from := pointOf(t, h, w, "int n;")
	to := from.Add(geom.Pt(5, 0))
	h.HandleAll(event.Sweep(event.Left, from, to))
	if got := w.SelectedText(SubBody); got != "int n" {
		t.Errorf("selected %q", got)
	}
	cw, csub := h.Current()
	if cw != w || csub != SubBody {
		t.Error("selection did not become current")
	}
}

func TestClickNullSelection(t *testing.T) {
	h, _ := world(t)
	w, _ := h.OpenFile("/usr/rob/src/help/help.c", "")
	p := pointOf(t, h, w, "main")
	h.HandleAll(event.Click(event.Left, p))
	sel := w.Sel[SubBody]
	if !sel.Empty() {
		t.Errorf("click selection = %+v", sel)
	}
	if w.Body.Slice(sel.Q0, 4) != "main" {
		t.Errorf("insertion point at %q", w.Body.Slice(sel.Q0, 4))
	}
}

func TestMiddleClickExecutesWholeWord(t *testing.T) {
	h, _ := world(t)
	w, _ := h.OpenFile("/usr/rob/src/help/help.c", "")
	// Put a command word in a scratch window and middle-click inside it.
	scratch := h.NewWindow()
	scratch.Body.SetString("some Exit word")
	p := pointOf(t, h, scratch, "xit") // middle of "Exit"
	h.HandleAll(event.Click(event.Middle, p))
	if !h.Exited() {
		t.Error("middle click in word did not execute whole word")
	}
	_ = w
}

func TestMiddleSweepExecutesLiterally(t *testing.T) {
	h, _ := world(t)
	w := h.NewWindow()
	w.Body.SetString("Open /usr/rob/src/help/dat.h trailing")
	from := pointOf(t, h, w, "Open")
	to := from.Add(geom.Pt(len("Open /usr/rob/src/help/dat.h"), 0))
	h.HandleAll(event.Sweep(event.Middle, from, to))
	if h.WindowByName("/usr/rob/src/help/dat.h") == nil {
		t.Error("swept Open command did not run")
	}
}

func TestCutChordGesture(t *testing.T) {
	h, _ := world(t)
	w := h.NewWindow()
	w.Body.SetString("delete me now")
	from := pointOf(t, h, w, "delete")
	to := from.Add(geom.Pt(7, 0))
	// Sweep "delete " with left, then chord middle for Cut.
	h.HandleAll(event.SweepChord(event.Left, from, to, event.Middle))
	if w.Body.String() != "me now" {
		t.Errorf("body = %q", w.Body.String())
	}
	if h.Snarf() != "delete " {
		t.Errorf("snarf = %q", h.Snarf())
	}
}

func TestPasteChordGesture(t *testing.T) {
	h, _ := world(t)
	w := h.NewWindow()
	w.Body.SetString("cut this|")
	from := pointOf(t, h, w, "cut ")
	h.HandleAll(event.SweepChord(event.Left, from, from.Add(geom.Pt(4, 0)), event.Middle))
	if w.Body.String() != "this|" {
		t.Fatalf("after cut: %q", w.Body.String())
	}
	// Click at the bar and paste via chord.
	p := pointOf(t, h, w, "|")
	h.HandleAll(event.ChordClick(event.Left, p, event.Right))
	if w.Body.String() != "thiscut |" {
		t.Errorf("after paste: %q", w.Body.String())
	}
}

func TestCutThenPasteChordMove(t *testing.T) {
	// "One may even click the middle and then right buttons, while
	// holding the left down, to execute a cut-and-paste" — a no-op move
	// that loads the snarf buffer.
	h, _ := world(t)
	w := h.NewWindow()
	w.Body.SetString("word stays")
	from := pointOf(t, h, w, "word")
	h.HandleAll(event.SweepChord(event.Left, from, from.Add(geom.Pt(4, 0)), event.Middle, event.Right))
	if w.Body.String() != "word stays" {
		t.Errorf("body = %q", w.Body.String())
	}
	if h.Snarf() != "word" {
		t.Errorf("snarf = %q", h.Snarf())
	}
}

func TestTypingReplacesSelection(t *testing.T) {
	h, _ := world(t)
	w := h.NewWindow()
	w.Body.SetString("abcdef")
	from := pointOf(t, h, w, "cd")
	h.HandleAll(event.Sweep(event.Left, from, from.Add(geom.Pt(2, 0))))
	// Mouse is over the selection; typing replaces it.
	h.HandleAll(event.Type("XY"))
	if w.Body.String() != "abXYef" {
		t.Errorf("body = %q", w.Body.String())
	}
	if h.Metrics().Keystrokes != 2 {
		t.Errorf("keystrokes = %d", h.Metrics().Keystrokes)
	}
}

func TestTypingNewlineIsJustACharacter(t *testing.T) {
	h, _ := world(t)
	w := h.NewWindow()
	w.Body.SetString("ab")
	p := pointOf(t, h, w, "b")
	h.HandleAll(event.Click(event.Left, p))
	h.HandleAll(event.Type("\n"))
	if w.Body.String() != "a\nb" {
		t.Errorf("body = %q", w.Body.String())
	}
	if h.Exited() {
		t.Error("newline must not execute anything")
	}
}

func TestBackspace(t *testing.T) {
	h, _ := world(t)
	w := h.NewWindow()
	w.Body.SetString("abc")
	p := pointOf(t, h, w, "c")
	h.HandleAll(event.Click(event.Left, p)) // insertion point before c
	h.HandleAll(event.Type("\b"))
	if w.Body.String() != "ac" {
		t.Errorf("body = %q", w.Body.String())
	}
}

func TestTagEditing(t *testing.T) {
	h, _ := world(t)
	w, _ := h.OpenFile("/usr/rob/src/help/dat.h", "")
	p := tagPointOf(t, h, w, "dat.h")
	h.HandleAll(event.Click(event.Left, p))
	cw, csub := h.Current()
	if cw != w || csub != SubTag {
		t.Error("tag click did not set current subwindow")
	}
}

func TestWindowTabRevealGesture(t *testing.T) {
	h, _ := world(t)
	fsWrite(t, h, "/a", strings.Repeat("a\n", 30))
	fsWrite(t, h, "/b", strings.Repeat("b\n", 30))
	a, _ := h.OpenFile("/a", "")
	h.SetCurrent(a, SubBody)
	b, _ := h.OpenFile("/b", "")
	h.Reveal(a)
	if !b.hidden {
		t.Fatal("setup: b should be hidden")
	}
	h.Render()
	// b is the second window in the column (index 1): its tab is at
	// column top + 1.
	col := a.col
	tabPt := geom.Pt(col.r.Min.X, col.r.Min.Y+1)
	h.HandleAll(event.Click(event.Left, tabPt))
	if b.hidden {
		t.Error("tab click did not reveal window")
	}
}

func TestDragWindowGesture(t *testing.T) {
	h, _ := world(t)
	w, _ := h.OpenFile("/usr/rob/src/help/help.c", "")
	h.Render()
	tagPt := tagPointOf(t, h, w, "help.c")
	dst := geom.Pt(60, 8)
	h.HandleAll(event.Drag(event.Right, tagPt, dst))
	if w.top != 8 {
		t.Errorf("top = %d", w.top)
	}
	if !dst.In(w.col.r) {
		t.Error("window not in destination column")
	}
}

func TestColumnTabExpandGesture(t *testing.T) {
	h, _ := world(t)
	h.Render()
	h.HandleAll(event.Click(event.Left, geom.Pt(0, 0)))
	if h.cols[0].r.Dx() <= h.cols[1].r.Dx() {
		t.Error("left column did not expand")
	}
}

func TestScrollBarGestures(t *testing.T) {
	h, _ := world(t)
	fsWrite(t, h, "/long", strings.Repeat("x\n", 200))
	w, _ := h.OpenFile("/long", "")
	h.Render()
	col := w.col
	barX := col.winRect().Min.X
	clickPt := geom.Pt(barX, w.top+5)
	// Right button scrolls forward.
	h.HandleAll(event.Click(event.Right, clickPt))
	if w.bodyOrg == 0 {
		t.Error("right click in scroll bar did not scroll")
	}
	org := w.bodyOrg
	// Left button scrolls back.
	h.HandleAll(event.Click(event.Left, clickPt))
	if w.bodyOrg >= org {
		t.Errorf("left click did not scroll back: %d -> %d", org, w.bodyOrg)
	}
	// Middle jumps proportionally: clicking near the bottom of the bar
	// lands deep in the file.
	span := col.visibleSpan(w)
	h.HandleAll(event.Click(event.Middle, geom.Pt(barX, w.top+span-1)))
	if ln := w.Body.LineAt(w.bodyOrg); ln < 100 {
		t.Errorf("middle jump landed at line %d", ln)
	}
}

func TestRunStopsOnExit(t *testing.T) {
	h, _ := world(t)
	w := h.NewWindow()
	w.Body.SetString("Exit New New")
	var s event.Stream
	p := pointOf(t, h, w, "Exit")
	s.Push(event.Click(event.Middle, p))
	// These would create windows if processed.
	s.Push(event.Click(event.Middle, p.Add(geom.Pt(5, 0))))
	h.Run(&s)
	if !h.Exited() {
		t.Fatal("Exit not executed")
	}
	if len(h.Windows()) != 1 {
		t.Errorf("windows = %d; events after Exit should be dropped", len(h.Windows()))
	}
}

func TestRenderSelectionAttributes(t *testing.T) {
	h, _ := world(t)
	a := h.NewWindow()
	a.Body.SetString("first window")
	b := h.NewWindowIn(1)
	b.Body.SetString("second window")
	a.SetSelection(SubBody, 0, 5)
	b.SetSelection(SubBody, 0, 6)
	h.SetCurrent(b, SubBody)
	h.Render()
	// b's selection is current: reverse video. a's: outline.
	pa, _ := a.frameFor(SubBody).PointOf(0)
	pb, _ := b.frameFor(SubBody).PointOf(0)
	s := h.Screen()
	if got := s.At(pb).Attr; got.String() != "R" {
		t.Errorf("current selection attr = %v", got)
	}
	if got := s.At(pa).Attr; got.String() != "O" {
		t.Errorf("other selection attr = %v", got)
	}
}

func TestRenderDirectoryFigureShape(t *testing.T) {
	// The Figure 1 shape: a directory window shows its name with a final
	// slash in the tag and the contents in the body.
	h, _ := world(t)
	w, _ := h.OpenFile("/usr/rob/src/help", "")
	h.Render()
	screen := h.Screen().String()
	if !strings.Contains(screen, "/usr/rob/src/help/") {
		t.Errorf("tag line missing from screen:\n%s", screen)
	}
	if !strings.Contains(screen, "help.c") || !strings.Contains(screen, "dat.h") {
		t.Errorf("directory listing missing from screen:\n%s", screen)
	}
	_ = w
}

func TestTypingMarksModified(t *testing.T) {
	h, _ := world(t)
	w, _ := h.OpenFile("/usr/rob/src/help/dat.h", "")
	p := pointOf(t, h, w, "typedef")
	h.HandleAll(event.Click(event.Left, p))
	h.HandleAll(event.Type("z"))
	if !strings.Contains(w.Tag.String(), "Put!") {
		t.Errorf("tag after typing = %q", w.Tag.String())
	}
}

func TestExecSweepUnderline(t *testing.T) {
	h, _ := world(t)
	w := h.NewWindow()
	w.Body.SetString("run Cut now")
	h.Render()
	p0, ok := h.FindBody(w, "Cut")
	if !ok {
		t.Fatal("Cut not visible")
	}
	// Press middle and drag over the word without releasing.
	h.Handle(event.MouseEvent(event.Mouse{Pt: p0, Buttons: event.Middle}))
	h.Handle(event.MouseEvent(event.Mouse{Pt: p0.Add(geom.Pt(3, 0)), Buttons: event.Middle}))
	h.Render()
	attrs := h.Screen().AttrString()
	if !strings.Contains(attrs, "UUU") {
		t.Errorf("mid-sweep text not underlined:\n%s", attrs)
	}
	// Release: the underline goes away and the text executed.
	h.Handle(event.MouseEvent(event.Mouse{Pt: p0.Add(geom.Pt(3, 0)), Buttons: 0}))
	h.Render()
	if strings.Contains(h.Screen().AttrString(), "U") {
		t.Error("underline survived release")
	}
}
