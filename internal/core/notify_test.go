package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/notify"
)

// pings counts completed echo runs that reached the Errors window.
func pings(h *Help) int {
	return strings.Count(h.ErrorsText(), "ping\n")
}

// TestWatchRerunsOnBodyChange: Watch runs its command once up front,
// then again when the watched window's body changes — driven by the
// notify bus, not polling.
func TestWatchRerunsOnBodyChange(t *testing.T) {
	h, fs := world(t)
	w, err := h.OpenFile("/usr/rob/lib/profile", "")
	if err != nil {
		t.Fatal(err)
	}
	h.Execute(w, "Watch echo ping")
	waitFor(t, "first run", func() bool { return pings(h) == 1 })

	// Get! reloads the file from disk: a body change swept at the end
	// of the interaction, published as a body event.
	fs.WriteFile("/usr/rob/lib/profile", []byte("changed contents\n"))
	h.Execute(w, "Get!")
	waitFor(t, "rerun after body change", func() bool { return pings(h) >= 2 })

	// A command on the same window that does NOT touch the body must
	// not retrigger the watcher.
	before := pings(h)
	h.Execute(w, "echo other")
	h.WaitIdleFor(time.Second)
	if got := pings(h); got != before {
		t.Errorf("pings after no-op exec = %d, want %d", got, before)
	}

	h.KillAll()
	waitFor(t, "watcher killed", func() bool { return len(h.Procs()) == 0 })
}

// TestWatchKillUnblocksParked: Kill must wake a watcher parked on its
// subscription between runs, not just set a flag it never checks.
func TestWatchKillUnblocksParked(t *testing.T) {
	h, _ := world(t)
	w, err := h.OpenFile("/usr/rob/lib/profile", "")
	if err != nil {
		t.Fatal(err)
	}
	h.Execute(w, "Watch echo ping")
	waitFor(t, "first run", func() bool { return pings(h) == 1 })
	waitFor(t, "watcher listed", func() bool {
		for _, p := range h.Procs() {
			if strings.HasPrefix(p.Name, "Watch") {
				return true
			}
		}
		return false
	})
	h.KillAll()
	waitFor(t, "watcher exited", func() bool { return len(h.Procs()) == 0 })
}

// TestWatchExitsOnWindowClose: closing the watched window publishes a
// del event; the watcher hears it and exits on its own.
func TestWatchExitsOnWindowClose(t *testing.T) {
	h, _ := world(t)
	w, err := h.OpenFile("/usr/rob/lib/profile", "")
	if err != nil {
		t.Fatal(err)
	}
	h.Execute(w, "Watch echo ping")
	waitFor(t, "first run", func() bool { return pings(h) == 1 })
	h.CloseWindow(w)
	waitFor(t, "watcher exited on del", func() bool { return len(h.Procs()) == 0 })
}

// TestWatchRefusedAtProcLimitClosesSubscription: watchCmd subscribes
// before calling startProc; when startProc refuses at the proc cap the
// run fn (whose defer closes the subscription) never executes, so the
// refusal path must close it itself — a leaked subscription sits in the
// bus forever, absorbing every future publish into a ring nobody
// drains.
func TestWatchRefusedAtProcLimitClosesSubscription(t *testing.T) {
	h, _ := world(t)
	w, err := h.OpenFile("/usr/rob/lib/profile", "")
	if err != nil {
		t.Fatal(err)
	}
	h.SetLimits(Limits{MaxProcs: 1})
	// The first watcher parks on its subscription, filling the one slot.
	h.Execute(w, "Watch echo ping")
	waitFor(t, "first watcher running", func() bool { return pings(h) == 1 })
	subs := h.Obs.StatsMap()["notify.subs"]

	h.Execute(w, "Watch echo pong")
	waitFor(t, "refusal in Errors", func() bool {
		return strings.Contains(h.ErrorsText(), "refused")
	})
	if got := h.Obs.StatsMap()["notify.subs"]; got != subs {
		t.Errorf("notify.subs = %d after refused Watch, want %d (subscription leaked)", got, subs)
	}
	h.KillAll()
	waitFor(t, "watcher killed", func() bool { return len(h.Procs()) == 0 })
}

// TestSlowSubscriberNeverBacksUpCore: a subscriber that stops reading
// overflows its own ring — gap-marked, resyncable — while the core's
// apply queue stays empty: event fan-out never sits on the interaction
// path.
func TestSlowSubscriberNeverBacksUpCore(t *testing.T) {
	h, fs := world(t)
	w, err := h.OpenFile("/usr/rob/lib/profile", "")
	if err != nil {
		t.Fatal(err)
	}
	// Tiny ring, never read while the session works.
	sub := h.Notify.Subscribe(0, 4, 0)
	defer sub.Close()

	for i := 0; i < 20; i++ {
		fs.WriteFile("/usr/rob/lib/profile", []byte(strings.Repeat("x", i+1)+"\n"))
		h.Execute(w, "Get!")
	}
	if depth := h.Obs.StatsMap()["core.queue.depth"]; depth != 0 {
		t.Errorf("core.queue.depth = %d with a stalled subscriber, want 0", depth)
	}

	// The stalled reader resyncs: one gap marker, then a contiguous
	// newest tail.
	ev, ok := sub.TryNext()
	if !ok || ev.Kind != notify.KindGap {
		t.Fatalf("first drained event = %+v ok=%v, want gap marker", ev, ok)
	}
	var last uint64
	for {
		ev, ok := sub.TryNext()
		if !ok {
			break
		}
		if ev.Kind == notify.KindGap {
			t.Fatalf("second gap marker after resync: %+v", ev)
		}
		if last != 0 && ev.Seq != last+1 {
			t.Fatalf("tail not contiguous: %d after %d", ev.Seq, last)
		}
		last = ev.Seq
	}
	if last == 0 {
		t.Fatal("no events retained after the gap")
	}
	// And from here on it is a live subscriber again.
	seq := h.Notify.Publish(w.ID, "body", "gen 99")
	ev, ok = sub.TryNext()
	if !ok || ev.Seq != seq {
		t.Errorf("post-resync event = %+v ok=%v, want seq %d", ev, ok, seq)
	}
}
