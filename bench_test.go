package repro_test

// One benchmark per evaluation table (see EXPERIMENTS.md), plus end-to-end
// benches for the expensive paths: world provisioning, screen rendering,
// full-session replay, and the /mnt/help file interface.

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/journal"
	"repro/internal/loadgen"
	"repro/internal/notify"
	"repro/internal/session"
	"repro/internal/sessiond"
	"repro/internal/srvnet"
	"repro/internal/vfs"
	"repro/internal/world"
)

// BenchmarkWorldBuild provisions the paper's whole environment: sources,
// tools, mailbox, processes, pre-built tree.
func BenchmarkWorldBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := world.Build(120, 60); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBoot measures Build plus opening the Figure 4 screen.
func BenchmarkBoot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := world.Build(120, 60)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Boot(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionReplay (T1) runs the complete Figures 4-12 debugging
// session through the live event pipeline.
func BenchmarkSessionReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := session.New(120, 60)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.RunDebugSession(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInteractionTable (T2) prices the task suite under all models.
func BenchmarkInteractionTable(b *testing.B) {
	tasks := baseline.StandardTasks()
	for i := 0; i < b.N; i++ {
		costs := baseline.Table(tasks)
		if len(costs) == 0 {
			b.Fatal("no costs")
		}
	}
}

// BenchmarkUsesVsGrep (T3) runs both the semantic and the textual search
// over the paper's source tree.
func BenchmarkUsesVsGrep(b *testing.B) {
	w, err := world.Build(80, 24)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.UsesVsGrep(w.FS, w.Shell, world.SrcDir, "n"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGrepScan isolates the textual half of T3.
func BenchmarkGrepScan(b *testing.B) {
	w, err := world.Build(80, 24)
	if err != nil {
		b.Fatal(err)
	}
	var out bytes.Buffer
	ctx := w.Shell.NewContext(&out, &out)
	ctx.Dir = world.SrcDir
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Reset()
		w.Shell.Run(ctx, "grep -n n *.c")
	}
}

// BenchmarkPlacement (T5) runs the placement heuristic for a filling
// column.
func BenchmarkPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := baseline.PlacementHelp(16, 48, 30)
		if res.NewestSpan < 1 {
			b.Fatal("placement degenerated")
		}
	}
}

// BenchmarkHelpfsNewWindow (T6) creates windows through the file
// interface, as client programs do.
func BenchmarkHelpfsNewWindow(b *testing.B) {
	w, err := world.Build(120, 60)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := w.FS.Open(world.MountRoot+"/new/ctl", vfs.OREAD)
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, 16)
		n, _ := f.Read(buf)
		f.Close()
		// Steady state: delete the window again so the table and the
		// index stay small.
		id := strings.TrimSpace(string(buf[:n]))
		if err := w.FS.WriteFile(world.MountRoot+"/"+id+"/ctl", []byte("delete\n")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHelpfsBodyRead (T6) reads a window body through /mnt/help.
func BenchmarkHelpfsBodyRead(b *testing.B) {
	w, err := world.Build(120, 60)
	if err != nil {
		b.Fatal(err)
	}
	win := w.Help.NewWindow()
	win.Body.SetString(strings.Repeat("text line\n", 500))
	path := fmt.Sprintf("%s/%d/body", world.MountRoot, win.ID)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.FS.ReadFile(path); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHelpfsBodyAppend (T6) appends through bodyapp, the path the
// decl script's output takes.
func BenchmarkHelpfsBodyAppend(b *testing.B) {
	w, err := world.Build(120, 60)
	if err != nil {
		b.Fatal(err)
	}
	win := w.Help.NewWindow()
	path := fmt.Sprintf("%s/%d/bodyapp", world.MountRoot, win.ID)
	line := []byte("appended output line\n")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := w.FS.Open(path, vfs.OWRITE)
		if err != nil {
			b.Fatal(err)
		}
		f.Write(line)
		f.Close()
		if win.Body.Len() > 1<<20 {
			win.Body.SetString("")
		}
	}
}

// BenchmarkRenderScreen measures a full redraw of a busy screen.
func BenchmarkRenderScreen(b *testing.B) {
	w, err := world.Build(120, 60)
	if err != nil {
		b.Fatal(err)
	}
	if err := w.Boot(); err != nil {
		b.Fatal(err)
	}
	for _, f := range []string{"help.c", "exec.c", "text.c"} {
		if _, err := w.Help.OpenFile(world.SrcDir+"/"+f, ""); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Help.Render()
	}
}

// BenchmarkRenderScreenDamaged measures a redraw after a one-rune edit:
// the incremental path repaints only the damaged column, so this sits
// between the all-clean fast path and a full repaint.
func BenchmarkRenderScreenDamaged(b *testing.B) {
	w, err := world.Build(120, 60)
	if err != nil {
		b.Fatal(err)
	}
	if err := w.Boot(); err != nil {
		b.Fatal(err)
	}
	var win *core.Window
	for _, f := range []string{"help.c", "exec.c", "text.c"} {
		if win, err = w.Help.OpenFile(world.SrcDir+"/"+f, ""); err != nil {
			b.Fatal(err)
		}
	}
	w.Help.Render()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		win.Body.Insert(0, "x")
		win.Body.Delete(0, 1)
		w.Help.Render()
	}
}

// BenchmarkOpenFile measures Open (window creation + placement + read).
func BenchmarkOpenFile(b *testing.B) {
	w, err := world.Build(120, 60)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		win, err := w.Help.OpenFile(world.SrcDir+"/exec.c", "213")
		if err != nil {
			b.Fatal(err)
		}
		w.Help.CloseWindow(win)
	}
}

// BenchmarkExecuteExternalRoundTrip measures a synchronous Execute of an
// external command. Renamed from BenchmarkExecuteExternal when the core
// became an actor: an external command now runs in its own goroutine and
// Execute waits for launch, queue drain, and reap, so the number measures
// a scheduler round trip, not the old in-loop call, and is not comparable
// against the pre-actor baseline.
func BenchmarkExecuteExternalRoundTrip(b *testing.B) {
	w, err := world.Build(120, 60)
	if err != nil {
		b.Fatal(err)
	}
	win, err := w.Help.OpenFile(world.SrcDir+"/exec.c", "")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Help.Execute(win, "echo bench")
		if i%256 == 0 {
			w.Help.Errors().Body.SetString("")
		}
	}
}

// BenchmarkGestureDispatch measures one click through the whole event
// pipeline including re-render.
func BenchmarkGestureDispatch(b *testing.B) {
	w, err := world.Build(120, 60)
	if err != nil {
		b.Fatal(err)
	}
	win, err := w.Help.OpenFile(world.SrcDir+"/exec.c", "101")
	if err != nil {
		b.Fatal(err)
	}
	w.Help.Render()
	p, ok := w.Help.FindBody(win, "lookup")
	if !ok {
		b.Fatal("target not visible")
	}
	evs := event.Click(event.Left, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Help.HandleAll(evs)
	}
}

// BenchmarkConnectivityCount (T7) measures the token counting over a
// session screen.
func BenchmarkConnectivityCount(b *testing.B) {
	s, err := session.New(120, 60)
	if err != nil {
		b.Fatal(err)
	}
	screen := s.Steps[0].Screen
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, line := range strings.Split(screen, "\n") {
			n += len(strings.Fields(line))
		}
		if n == 0 {
			b.Fatal("empty screen")
		}
	}
}

// BenchmarkStackTool measures the db stack pipeline: script, adb, window
// creation through the file interface.
func BenchmarkStackTool(b *testing.B) {
	w, err := world.Build(120, 60)
	if err != nil {
		b.Fatal(err)
	}
	if err := w.Boot(); err != nil {
		b.Fatal(err)
	}
	msg := w.Help.NewWindow()
	msg.Body.SetString("help 176153: user TLB miss\n")
	off := strings.Index(msg.Body.String(), "176153")
	msg.SetSelection(core.SubBody, off+1, off+1)
	w.Help.SetCurrent(msg, core.SubBody)
	stf := w.Help.WindowByName("/help/db/stf")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Help.Execute(stf, "stack")
	}
}

// BenchmarkSrvnetRoundTrip measures one read over the TCP file service:
// the latency a remote tool pays per operation in the multi-machine
// arrangement.
func BenchmarkSrvnetRoundTrip(b *testing.B) {
	fs := vfs.New()
	if err := fs.MkdirAll("/d"); err != nil {
		b.Fatal(err)
	}
	if err := fs.WriteFile("/d/f", []byte(strings.Repeat("data ", 200))); err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	go srvnet.NewServer(fs).Serve(l)
	c, err := srvnet.Dial(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ReadFile("/d/f"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireThroughput measures remote read throughput in the three
// regimes of the PR 7 wire path over TCP loopback: serial (one round
// trip per op, the old protocol's ceiling), pipelined (batches of reads
// in flight at once, matched by sequence number), and cached
// (generation-keyed hits that never touch the wire). The acceptance bar
// is pipelined ≥ 5x serial ops/sec.
func BenchmarkWireThroughput(b *testing.B) {
	setup := func(b *testing.B) *srvnet.Client {
		b.Helper()
		fs := vfs.New()
		if err := fs.MkdirAll("/d"); err != nil {
			b.Fatal(err)
		}
		if err := fs.WriteFile("/d/f", []byte(strings.Repeat("data ", 200))); err != nil {
			b.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { l.Close() })
		go srvnet.NewServer(fs).Serve(l)
		c, err := srvnet.Dial(l.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		return c
	}

	b.Run("serial", func(b *testing.B) {
		c := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.ReadFile("/d/f"); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("pipelined", func(b *testing.B) {
		c := setup(b)
		const window = 64
		b.ResetTimer()
		for done := 0; done < b.N; {
			n := window
			if rem := b.N - done; rem < n {
				n = rem
			}
			batch := c.NewBatch()
			futs := make([]*srvnet.Future, n)
			for i := 0; i < n; i++ {
				futs[i] = batch.ReadFile("/d/f")
			}
			if err := batch.Flush(); err != nil {
				b.Fatal(err)
			}
			for _, f := range futs {
				if _, err := f.Data(); err != nil {
					b.Fatal(err)
				}
			}
			done += n
		}
	})

	b.Run("cached", func(b *testing.B) {
		c := setup(b)
		c.SetCache(true)
		if _, err := c.ReadFile("/d/f"); err != nil { // prime
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.ReadFile("/d/f"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkJournalAppend measures the cost of journaling one operation:
// encode, enqueue, and the amortized group-commit write. This is the
// per-mutation tax the event loop pays while a session is journaled.
func BenchmarkJournalAppend(b *testing.B) {
	b.ReportAllocs()
	mem := journal.NewMemFS()
	jw, err := journal.Open(mem, journal.Config{Fsync: journal.SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer jw.Close()
	op := &journal.Op{Kind: journal.OpSplice, Win: 3, Sub: 1, P0: 120, P1: 4, Str1: "inserted text line\n"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jw.Append(op)
	}
	b.StopTimer()
	if err := jw.Flush(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRecoveryReplay measures bringing a crashed session back:
// load the journal, restore the checkpoint, replay the op tail into a
// freshly booted world.
func BenchmarkRecoveryReplay(b *testing.B) {
	// Record a representative session to replay.
	mem := journal.NewMemFS()
	w, err := world.Build(120, 60)
	if err != nil {
		b.Fatal(err)
	}
	if err := w.Boot(); err != nil {
		b.Fatal(err)
	}
	jw, err := journal.Open(mem, journal.Config{})
	if err != nil {
		b.Fatal(err)
	}
	w.Help.AttachJournal(jw, 1<<20)
	for _, f := range []string{"help.c", "exec.c", "text.c"} {
		win, err := w.Help.OpenFile(world.SrcDir+"/"+f, "")
		if err != nil {
			b.Fatal(err)
		}
		w.Help.Execute(win, "Snarf")
		w.Help.Execute(win, "echo bench")
		win.Body.Insert(0, "edited ")
		win.Body.Commit()
	}
	if err := jw.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w2, err := world.Build(120, 60)
		if err != nil {
			b.Fatal(err)
		}
		if err := w2.Boot(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := core.RecoverSession(w2.Help, mem); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJournalOverhead prices journaling on the two hot paths the
// acceptance budget names: the damaged-screen redraw and the bodyapp
// append. "on" journals into an in-memory medium with the default
// group-commit policy; "off" is the unjournaled baseline. Budget: <5%.
func BenchmarkJournalOverhead(b *testing.B) {
	for _, mode := range []string{"render-off", "render-on", "append-off", "append-on"} {
		b.Run(mode, func(b *testing.B) {
			w, err := world.Build(120, 60)
			if err != nil {
				b.Fatal(err)
			}
			if err := w.Boot(); err != nil {
				b.Fatal(err)
			}
			journaled := strings.HasSuffix(mode, "-on")
			if journaled {
				jw, err := journal.Open(journal.NewMemFS(), journal.Config{})
				if err != nil {
					b.Fatal(err)
				}
				defer jw.Close()
				w.Help.AttachJournal(jw, 1<<20)
			}
			if strings.HasPrefix(mode, "render") {
				var win *core.Window
				for _, f := range []string{"help.c", "exec.c", "text.c"} {
					if win, err = w.Help.OpenFile(world.SrcDir+"/"+f, ""); err != nil {
						b.Fatal(err)
					}
				}
				w.Help.Render()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					win.Body.Insert(0, "x")
					win.Body.Delete(0, 1)
					w.Help.Render()
				}
				return
			}
			win := w.Help.NewWindow()
			path := fmt.Sprintf("%s/%d/bodyapp", world.MountRoot, win.ID)
			line := []byte("appended output line\n")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, err := w.FS.Open(path, vfs.OWRITE)
				if err != nil {
					b.Fatal(err)
				}
				f.Write(line)
				f.Close()
				if win.Body.Len() > 1<<20 {
					win.Body.SetString("")
				}
			}
		})
	}
}

// BenchmarkObsOverhead measures what the observability layer costs on
// the hottest path, the damaged-screen redraw: "on" is the default
// (registry attached, every render counted, timed, and bucketed), "off"
// detaches the registry with SetObs(nil), which removes even the clock
// reads. The acceptance budget for on vs off is <5%.
func BenchmarkObsOverhead(b *testing.B) {
	for _, mode := range []string{"on", "off"} {
		b.Run(mode, func(b *testing.B) {
			w, err := world.Build(120, 60)
			if err != nil {
				b.Fatal(err)
			}
			if err := w.Boot(); err != nil {
				b.Fatal(err)
			}
			if mode == "off" {
				w.Help.SetObs(nil)
			}
			var win *core.Window
			for _, f := range []string{"help.c", "exec.c", "text.c"} {
				if win, err = w.Help.OpenFile(world.SrcDir+"/"+f, ""); err != nil {
					b.Fatal(err)
				}
			}
			w.Help.Render()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				win.Body.Insert(0, "x")
				win.Body.Delete(0, 1)
				w.Help.Render()
			}
		})
	}
}

// BenchmarkConcurrentServe measures the file interface under contention:
// parallel readers of /mnt/help/index while a live external command is
// registered — the "core off the critical path" number. Before the actor
// refactor this workload was impossible: a running command held the whole
// session.
func BenchmarkConcurrentServe(b *testing.B) {
	w, err := world.Build(120, 60)
	if err != nil {
		b.Fatal(err)
	}
	win, err := w.Help.OpenFile(world.SrcDir+"/exec.c", "")
	if err != nil {
		b.Fatal(err)
	}
	w.Help.Start(win, "sleep 600")
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := w.FS.ReadFile(world.MountRoot + "/index"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	w.Help.Execute(win, "Kill")
	w.Help.WaitIdle()
}

// BenchmarkQueueThroughput measures the apply queue itself: the cost of
// pushing a mutation from a command goroutine through the drainer,
// amortized over drain batches.
func BenchmarkQueueThroughput(b *testing.B) {
	w, err := world.Build(120, 60)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Help.Apply(func() {})
	}
	w.Help.WaitIdle()
}

// BenchmarkSessionChurn measures the daemon's full session lifecycle:
// stamp a world from the shared template on first attach, serve one
// namespace read, detach, and reap — the steady-state cost of a client
// population that comes and goes (see docs/ARCHITECTURE.md,
// "Multi-session daemon").
func BenchmarkSessionChurn(b *testing.B) {
	tmpl, err := world.NewTemplate()
	if err != nil {
		b.Fatal(err)
	}
	m := sessiond.NewManager(sessiond.Config{
		Width:       40,
		Height:      12,
		MaxSessions: 16,
		TTL:         time.Nanosecond,
		Build: func(name string, w, h int) (*world.World, error) {
			return tmpl.NewSession(w, h)
		},
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Drain(ctx)
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs, detach, err := m.AttachSession(fmt.Sprintf("churn-%d", i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fs.ReadFile(world.MountRoot + "/index"); err != nil {
			b.Fatal(err)
		}
		detach()
		// The background reaper may win the race for the reap; either
		// way the table must be empty before the next spin.
		for m.SessionCount() > 0 {
			m.ReapIdle()
		}
	}
}

// BenchmarkManySessionsServe holds 1024 live sessions in one daemon and
// measures namespace reads spread across all of them — the per-request
// cost of a CPU server hosting a whole department, and the check that
// the session table imposes no cross-session serialization.
func BenchmarkManySessionsServe(b *testing.B) {
	const sessions = 1024
	tmpl, err := world.NewTemplate()
	if err != nil {
		b.Fatal(err)
	}
	m := sessiond.NewManager(sessiond.Config{
		Width:       40,
		Height:      12,
		MaxSessions: sessions,
		Build: func(name string, w, h int) (*world.World, error) {
			return tmpl.NewSession(w, h)
		},
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		m.Drain(ctx)
	}()
	fss := make([]*vfs.FS, sessions)
	detaches := make([]func(), sessions)
	for i := range fss {
		fs, detach, err := m.AttachSession(fmt.Sprintf("s%04d", i))
		if err != nil {
			b.Fatal(err)
		}
		fss[i], detaches[i] = fs, detach
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(next.Add(1)) * 37 // spread goroutines across the table
		for pb.Next() {
			if _, err := fss[i%sessions].ReadFile(world.MountRoot + "/index"); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
	b.StopTimer()
	for _, d := range detaches {
		d()
	}
}

// BenchmarkReplayThroughput measures the overload-governed daemon end to
// end: a fleet of loadgen users replaying the default editing trace over
// srvnet against a budgeted multi-session daemon, full speed (no think
// time). One b.N iteration is one trace repetition per user; the
// reported ops/s is the wire-operation rate the fleet sustained. This is
// the PR 9 regression gate for the whole stack — admission control, wire
// backpressure, and the mux path together.
func BenchmarkReplayThroughput(b *testing.B) {
	tmpl, err := world.NewTemplate()
	if err != nil {
		b.Fatal(err)
	}
	m := sessiond.NewManager(sessiond.Config{
		Width:       60,
		Height:      20,
		MaxSessions: 16,
		MaxBytes:    256 << 20,
		Build: func(name string, w, h int) (*world.World, error) {
			return tmpl.NewSession(w, h)
		},
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		m.Drain(ctx)
	}()
	srv := srvnet.NewMuxServer(m)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(l)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	const users = 8
	b.ReportAllocs()
	b.ResetTimer()
	st, err := loadgen.Replay(loadgen.Config{
		Addr:       l.Addr().String(),
		Users:      users,
		Sessions:   users / 2,
		Iterations: b.N,
		Seed:       42,
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if st.Errors > 0 {
		b.Fatalf("replay errors: %d, first: %v", st.Errors, st.FirstError)
	}
	if st.SeqRegressions > 0 {
		b.Fatalf("notify sequence regressed %d times", st.SeqRegressions)
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(st.Ops)/sec, "ops/s")
	}
}

// BenchmarkEventFanout measures the notify bus with a thousand parked
// subscribers: the per-publish cost the core actor pays at a sweep
// point. Rings overflow newest-wins, so a publish never blocks on a
// reader — the number here is pure fan-out, not consumer speed.
func BenchmarkEventFanout(b *testing.B) {
	bus := notify.New()
	subs := make([]*notify.Sub, 1000)
	for i := range subs {
		subs[i] = bus.Subscribe(0, 8, 0)
	}
	defer func() {
		for _, s := range subs {
			s.Close()
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Publish(1, "body", "gen 1")
	}
}

// BenchmarkPushInvalidatedRead measures the PR 8 cache regime: reads
// served from the generation-keyed cache while a push-invalidation
// stream keeps it honest. cached-hit is the steady state (zero wire
// traffic); invalidate-cycle is the full loop — a remote write, the
// pushed invalidation, and the first fresh read — i.e. how stale a
// push-invalidated cache can ever be.
func BenchmarkPushInvalidatedRead(b *testing.B) {
	w, err := world.Build(100, 40)
	if err != nil {
		b.Fatal(err)
	}
	win := w.Help.NewWindow()
	win.Body.SetString("v0")
	body := world.MountRoot + "/1/body"
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	go srvnet.NewServer(w.FS).Serve(l)
	reader, err := srvnet.Dial(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer reader.Close()
	reader.SetCache(true)
	stop := reader.StartPushInval(world.MountRoot)
	defer stop()
	writer, err := srvnet.Dial(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer writer.Close()

	b.Run("cached-hit", func(b *testing.B) {
		if _, err := reader.ReadFile(body); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := reader.ReadFile(body); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("invalidate-cycle", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			payload := []byte(fmt.Sprintf("v%d", i+1))
			if err := writer.WriteFile(body, payload); err != nil {
				b.Fatal(err)
			}
			for {
				data, err := reader.ReadFile(body)
				if err != nil {
					b.Fatal(err)
				}
				if bytes.Equal(data, payload) {
					break
				}
			}
		}
	})
}

// ---- PR 10: gigabyte-class bodies behind the same Buffer API ----

// largeBodyBytes sizes the synthetic log the paged-text benchmarks open:
// big enough (100 MB) that materializing it would dwarf the resident
// budget, small enough to synthesize per run.
const largeBodyBytes = 100 << 20

// largeBudget is the paged residency cap the benchmarks run under, and
// largeMemCeiling is the assertion threshold: cache cap plus one
// in-flight page plus slack for the rest of the session's windows.
const (
	largeBudget     = 8 << 20
	largeMemCeiling = 3 * largeBudget
)

// buildLargeWorld provisions a world holding a 100 MB line-structured
// log, the body every following benchmark opens paged.
func buildLargeWorld(b *testing.B) (*world.World, string) {
	b.Helper()
	w, err := world.Build(120, 60)
	if err != nil {
		b.Fatal(err)
	}
	w.Help.SetLimits(core.Limits{MaxResident: largeBudget})
	const name = "/usr/rob/lib/huge.log"
	line := []byte("0000000 a log line with several words to scan per visit\n")
	body := bytes.Repeat(line, largeBodyBytes/len(line)+1)[:largeBodyBytes]
	body[len(body)-1] = '\n'
	if err := w.FS.WriteFile(name, body); err != nil {
		b.Fatal(err)
	}
	return w, name
}

// assertBounded fails the benchmark if the session's resident buffer
// bytes ever approach the size of the file: the whole point of the paged
// engine is that a 100 MB body costs a bounded working set.
func assertBounded(b *testing.B, w *world.World) {
	b.Helper()
	if mem := w.Help.MemBytes(); mem > largeMemCeiling {
		b.Fatalf("resident %d bytes exceeds ceiling %d (budget %d)", mem, largeMemCeiling, largeBudget)
	}
}

// BenchmarkOpenLarge opens the 100 MB body. The open streams one byte
// scan to build the page/newline index but materializes nothing, so the
// reported MB/s is the index build and memory stays at the budget.
func BenchmarkOpenLarge(b *testing.B) {
	w, name := buildLargeWorld(b)
	b.SetBytes(largeBodyBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		win, err := w.Help.OpenFile(name, "")
		if err != nil {
			b.Fatal(err)
		}
		if !win.Body.Paged() {
			b.Fatal("large body did not open paged")
		}
		assertBounded(b, w)
		w.Help.CloseWindow(win)
	}
}

// BenchmarkScrollLarge jumps around the whole file, pricing the line
// lookup plus the page faults needed to show each landing spot.
func BenchmarkScrollLarge(b *testing.B) {
	w, name := buildLargeWorld(b)
	win, err := w.Help.OpenFile(name, "")
	if err != nil {
		b.Fatal(err)
	}
	lines := win.Body.NLines()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ln := (i*7919)%lines + 1
		org := win.Body.LineStart(ln)
		// Paint one row's worth of text at the landing spot.
		if s := win.Body.Slice(org, 80); len(s) == 0 && ln < lines {
			b.Fatal("empty slice inside body")
		}
	}
	b.StopTimer()
	assertBounded(b, w)
}

// BenchmarkEditLarge splices single characters at spots all over the
// file and undoes each one, the piece-table edit path under a body that
// could never be materialized.
func BenchmarkEditLarge(b *testing.B) {
	w, name := buildLargeWorld(b)
	win, err := w.Help.OpenFile(name, "")
	if err != nil {
		b.Fatal(err)
	}
	n := win.Body.Len()
	// A fixed cycle of offsets: each spot's first edit splits a piece,
	// later visits reuse the boundary, so the piece list stays small and
	// the number prices the steady-state splice, not list growth.
	var offs [256]int
	for j := range offs {
		offs[j] = (j * 7919 * 1031) % n
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		win.Body.Insert(offs[i%len(offs)], "x")
		if !win.Body.Undo() {
			b.Fatal("undo failed")
		}
	}
	b.StopTimer()
	assertBounded(b, w)
}
