// Debugsession replays the paper's worked example — fixing the crash a
// user reported by mail — entirely with the mouse, printing each figure's
// screen and the interaction accounting along the way.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/session"
	"repro/internal/world"
)

func main() {
	s, err := session.New(120, 60)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.RunDebugSession(); err != nil {
		log.Fatal(err)
	}

	prevPresses := 0
	for _, st := range s.Steps {
		fmt.Printf("==== %s: %s ====\n", st.Name, st.Desc)
		fmt.Print(st.Screen)
		fmt.Printf("[step cost: %d presses; cumulative keystrokes: %d]\n\n",
			st.Metrics.Presses-prevPresses, st.Metrics.Keystrokes)
		prevPresses = st.Metrics.Presses
	}

	// The outcome: the fatal line is gone and the program rebuilt.
	data, err := s.W.FS.ReadFile(world.SrcDir + "/exec.c")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bug removed from exec.c: %v\n", !strings.Contains(string(data), "n = 0;"))
	fmt.Printf("program relinked:        %v\n", s.W.FS.Exists(world.SrcDir+"/v.out"))

	m := s.Last().Metrics
	fmt.Printf("\nsession total: %d presses, %d keystrokes, %d cells of mouse travel\n",
		m.Presses, m.Keystrokes, m.Travel)
	if m.Keystrokes == 0 {
		fmt.Println(`"Through this entire demo I haven't yet touched the keyboard."`)
	}
}
