// Remote demonstrates the paper's multi-machine arrangement (Discussion:
// "help could run on the terminal and make an invisible call to the CPU
// server"): help and its namespace live on one side of a TCP connection;
// a client process on the other side drives the user interface purely
// through file operations on /mnt/help.
package main

import (
	"fmt"
	"log"
	"net"
	"strings"

	"repro/internal/srvnet"
	"repro/internal/world"
)

func main() {
	// The "terminal": a booted help world serving its namespace.
	w, err := world.Build(100, 40)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Boot(); err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	go srvnet.NewServer(w.FS).Serve(l)
	fmt.Println("terminal: namespace served on", l.Addr())

	// The "CPU server": a client that has never linked against any UI
	// code, working the window system over the wire.
	c, err := srvnet.Dial(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Create a window (one read of new/ctl), name it, and fill it with a
	// computation done remotely: the list of C sources in the help tree.
	idRaw, err := c.ReadFile(world.MountRoot + "/new/ctl")
	if err != nil {
		log.Fatal(err)
	}
	id := strings.TrimSpace(string(idRaw))
	fmt.Println("cpu server: created window", id)

	if err := c.WriteFile(world.MountRoot+"/"+id+"/ctl",
		[]byte("name /remote/sources\n")); err != nil {
		log.Fatal(err)
	}
	names, err := c.Glob(world.SrcDir + "/*.c")
	if err != nil {
		log.Fatal(err)
	}
	var body strings.Builder
	body.WriteString("C sources found remotely:\n")
	for _, n := range names {
		info, err := c.Stat(n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(&body, "%-14s %5d bytes\n", n[strings.LastIndexByte(n, '/')+1:], info.Size)
	}
	if err := c.AppendFile(world.MountRoot+"/"+id+"/bodyapp", []byte(body.String())); err != nil {
		log.Fatal(err)
	}

	// Back on the terminal: the window exists, placed by help's heuristic.
	win := w.Help.WindowByName("/remote/sources")
	if win == nil {
		log.Fatal("remote window did not appear")
	}
	w.Help.Render()
	fmt.Println("\nterminal screen now shows:")
	fmt.Print(w.Help.Screen().String())

	idx, _ := c.ReadFile(world.MountRoot + "/index")
	fmt.Println("cpu server sees the index:")
	fmt.Print(string(idx))
}
