// Remote demonstrates the paper's multi-machine arrangement (Discussion:
// "help could run on the terminal and make an invisible call to the CPU
// server"): help and its namespace live on one side of a TCP connection;
// a client process on the other side drives the user interface purely
// through file operations on /mnt/help.
//
// The call stays invisible only while the network cooperates, so this
// example also exercises the hardened transport: the client is a
// srvnet.ReconnectingClient that survives an injected fault (the first
// connection drops a response frame) by redialing transparently, and
// when the server is shut down for good, it degrades with a typed
// ErrDegraded that help reports in its Errors window — the UI tells the
// user the CPU server died instead of freezing.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"strings"
	"time"

	"repro/internal/faultnet"
	"repro/internal/srvnet"
	"repro/internal/world"
)

func main() {
	// The "terminal": a booted help world serving its namespace.
	w, err := world.Build(100, 40)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Boot(); err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	// A flaky network: the first connection drops the first response
	// frame on the floor. Everything after is clean.
	fl := faultnet.WrapListener(l, func(i int) *faultnet.Script {
		if i == 0 {
			return faultnet.NewScript(faultnet.Fault{Op: "write", After: 0, Kind: faultnet.Drop})
		}
		return nil
	})
	srv := srvnet.NewServer(w.FS)
	go srv.Serve(fl)
	fmt.Println("terminal: namespace served on", l.Addr(), "(first response will be dropped)")

	// The "CPU server": a reconnecting client that has never linked
	// against any UI code, working the window system over the wire.
	// Its health transitions land in help's Errors window.
	c := srvnet.NewReconnectingClient(l.Addr().String())
	c.OpTimeout = 250 * time.Millisecond
	c.BackoffBase = 5 * time.Millisecond
	c.BackoffCap = 50 * time.Millisecond
	c.OnStateChange = func(s srvnet.State, err error) {
		w.Help.ReportFault("remote ("+s.String()+")", err)
	}
	defer c.Close()

	// Create a window (one read of new/ctl), name it, and fill it with a
	// computation done remotely: the list of C sources in the help tree.
	// The dropped response forces a timeout, a redial, and a retry — all
	// invisible here.
	idRaw, err := c.ReadFile(world.MountRoot + "/new/ctl")
	if err != nil {
		log.Fatal(err)
	}
	id := strings.TrimSpace(string(idRaw))
	fmt.Println("cpu server: created window", id, "(after surviving the dropped frame)")

	if err := c.WriteFile(world.MountRoot+"/"+id+"/ctl",
		[]byte("name /remote/sources\n")); err != nil {
		log.Fatal(err)
	}
	names, err := c.Glob(world.SrcDir + "/*.c")
	if err != nil {
		log.Fatal(err)
	}
	var body strings.Builder
	body.WriteString("C sources found remotely:\n")
	for _, n := range names {
		info, err := c.Stat(n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(&body, "%-14s %5d bytes\n", n[strings.LastIndexByte(n, '/')+1:], info.Size)
	}
	if err := c.AppendFile(world.MountRoot+"/"+id+"/bodyapp", []byte(body.String())); err != nil {
		log.Fatal(err)
	}

	// Back on the terminal: the window exists, placed by help's heuristic.
	win := w.Help.WindowByName("/remote/sources")
	if win == nil {
		log.Fatal("remote window did not appear")
	}
	w.Help.Render()
	fmt.Println("\nterminal screen now shows:")
	fmt.Print(w.Help.Screen().String())

	idx, _ := c.ReadFile(world.MountRoot + "/index")
	fmt.Println("cpu server sees the index:")
	fmt.Print(string(idx))

	// Now the CPU server's machine goes away: graceful shutdown drains
	// in-flight requests, then the next remote operation degrades with
	// a typed error instead of hanging, and help's Errors window says so.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal("shutdown:", err)
	}
	l.Close()
	fmt.Println("\nterminal: server shut down; cpu server tries one more call...")
	if _, err := c.ReadFile(world.MountRoot + "/index"); errors.Is(err, srvnet.ErrDegraded) {
		fmt.Println("cpu server: degraded as expected:", err)
	} else {
		log.Fatal("expected ErrDegraded, got:", err)
	}
	w.Help.Render()
	fmt.Println("\nhelp's Errors window reports:")
	fmt.Print(w.Help.Errors().Body.String())
}
