// Quickstart: build the demo world, boot help, open a file by executing
// an Open command with the mouse, edit it, and write it back — the
// smallest end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/world"
)

func main() {
	// A help screen of 100x40 character cells over the paper's world.
	w, err := world.Build(100, 40)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Boot(); err != nil {
		log.Fatal(err)
	}
	h := w.Help

	// Open the user's profile: execute "Open /usr/rob/lib/profile" the
	// way a user would — the command text could live in any window.
	scratch := h.NewWindowIn(0)
	scratch.Body.SetString("Open /usr/rob/lib/profile")
	h.Render()

	from, _ := h.FindBody(scratch, "Open")
	to, _ := h.FindBody(scratch, "profile")
	to.X += len("profile")
	h.HandleAll(event.Sweep(event.Middle, from, to))

	prof := h.WindowByName("/usr/rob/lib/profile")
	if prof == nil {
		log.Fatalf("profile did not open; errors: %q", h.Errors().Body.String())
	}
	fmt.Println("opened:", prof.FileName())

	// Edit: click at the top of the body and type a comment line.
	h.Render()
	p, _ := h.FindBody(prof, "bind")
	h.HandleAll(event.Click(event.Left, p))
	h.HandleAll(event.Type("# edited by quickstart\n"))

	// The tag now shows Put! — execute it to write the file.
	h.Render()
	putPt, ok := h.FindTag(prof, "Put!")
	if !ok {
		log.Fatal("modified window should offer Put!")
	}
	h.HandleAll(event.Click(event.Middle, putPt))

	data, err := w.FS.ReadFile("/usr/rob/lib/profile")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("file now starts with: %q\n", string(data[:23]))

	h.Render()
	fmt.Println("\nthe screen:")
	fmt.Print(h.Screen().String())

	m := h.Metrics()
	fmt.Printf("\ninteraction: %d presses, %d keystrokes\n", m.Presses, m.Keystrokes)
	_ = core.SubBody
}
