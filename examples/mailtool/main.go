// Mailtool demonstrates the paper's programming interface: a shell script
// — not a Go program, and containing no user-interface code — reads the
// mailbox through the mail tools and manipulates help windows purely via
// the /mnt/help file system.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/world"
)

func main() {
	w, err := world.Build(100, 48)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Boot(); err != nil {
		log.Fatal(err)
	}
	h := w.Help

	// Run the headers tool exactly as the middle button would.
	mailStf := h.WindowByName("/help/mail/stf")
	h.Execute(mailStf, "headers")

	headers := h.WindowByName(world.MboxPath)
	if headers == nil {
		log.Fatalf("no headers window; errors: %q", h.Errors().Body.String())
	}
	fmt.Println("mailbox headers:")
	fmt.Print(headers.Body.String())

	// Point at Sean's header and pop the message.
	body := headers.Body.String()
	off := indexRunes(body, "sean")
	headers.SetSelection(core.SubBody, off, off)
	h.SetCurrent(headers, core.SubBody)
	h.Execute(mailStf, "messages")

	for _, win := range h.Windows() {
		if win.Tag.Slice(0, 9) == "From sean" {
			fmt.Println("\nSean's message:")
			fmt.Print(win.Body.String())
		}
	}

	// Now the file interface directly: a script searches the message
	// window bodies for the crash banner and writes a report window —
	// grep and cp over /mnt/help, exactly as the paper describes.
	script := `
x=` + "`" + `{cat /mnt/help/new/ctl}
echo name /report > /mnt/help/$x/ctl
grep -n 'TLB miss' /mnt/help/*/body | sed 3q > /mnt/help/$x/bodyapp
`
	var out bytes.Buffer
	ctx := w.Shell.NewContext(&out, &out)
	if status := w.Shell.Run(ctx, script); status != 0 {
		log.Fatalf("script failed: %s", out.String())
	}
	report := h.WindowByName("/report")
	fmt.Println("\nreport window (built by a shell script through /mnt/help):")
	fmt.Print(report.Body.String())
}

func indexRunes(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return len([]rune(s[:i]))
		}
	}
	return 0
}
