// Cbrowser demonstrates the stripped-compiler browser on a fresh C
// project of your own: build a namespace, drop sources into it, and ask
// decl/uses questions both through the Go API and through the same
// /help/cbr tools the paper wires up with shell scripts.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/cc"
	"repro/internal/shell"
	"repro/internal/userland"
	"repro/internal/vfs"
)

func main() {
	fs := vfs.New()
	sh := shell.New(fs)
	userland.Install(sh)
	cc.Install(sh)

	// A small project with the classic hazard: a global shadowed by
	// locals, plus a short name grep will drown in.
	fs.MkdirAll("/proj")
	fs.WriteFile("/proj/defs.h", []byte(`typedef struct Queue Queue;
struct Queue { int n; };
int q;
`))
	fs.WriteFile("/proj/main.c", []byte(`#include "defs.h"
void
push(Queue *qp)
{
	qp->n++;
	q = qp->n;
}
int
pop(Queue *qp)
{
	int q;
	q = qp->n;
	qp->n--;
	return q;
}
`))

	// --- The Go API -------------------------------------------------------
	b := cc.NewBrowser()
	if err := b.ParseFS(fs, []string{"/proj/defs.h", "/proj/main.c"}); err != nil {
		log.Fatal(err)
	}
	q := b.Lookup("q")
	fmt.Printf("global q declared at %s\n", q.Decl)
	fmt.Println("references that really bind to the global:")
	for _, ref := range b.Uses(q, nil) {
		fmt.Printf("  %-18s %s\n", ref.Coord, ref.Kind)
	}
	fmt.Println("note: pop's local q and the struct field n are correctly excluded.")

	// --- The same answers through the shell tool --------------------------
	var out bytes.Buffer
	ctx := sh.NewContext(&out, &out)
	ctx.Dir = "/proj"
	if status := sh.Run(ctx, "rcc -u -iq -D/proj defs.h main.c"); status != 0 {
		log.Fatalf("rcc failed: %s", out.String())
	}
	fmt.Println("\nthe rcc tool (what /help/cbr/uses pipes into) reports:")
	fmt.Print(out.String())

	// --- And the contrast with grep ---------------------------------------
	out.Reset()
	sh.Run(ctx, "grep -n q defs.h main.c")
	fmt.Println("\ngrep q, for comparison (every occurrence of the letter):")
	fmt.Print(out.String())
}
