// Observe: the system watching itself through its own file interface.
// Boot the demo world, generate some activity, then run observe.rc — a
// plain shell script that cats /mnt/help/stats, a latency histogram,
// and the span trace. No metrics API, no debugger: the instruments are
// files, so the ordinary file tools read them.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/event"
	"repro/internal/world"
)

func main() {
	w, err := world.Build(100, 40)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Boot(); err != nil {
		log.Fatal(err)
	}
	h := w.Help

	// Generate activity worth measuring: open a file, execute a command,
	// type a little, render.
	if _, err := h.OpenFile("/usr/rob/lib/profile", ""); err != nil {
		log.Fatal(err)
	}
	scratch := h.NewWindowIn(0)
	scratch.Body.SetString("echo measured")
	h.Render()
	from, _ := h.FindBody(scratch, "echo")
	to, _ := h.FindBody(scratch, "measured")
	to.X += len("measured")
	h.HandleAll(event.Sweep(event.Middle, from, to))
	h.Render()

	// The demonstration: a shell script, run by the world's own shell,
	// reads every instrument purely through file reads on /mnt/help.
	script, err := os.ReadFile("observe.rc")
	if err != nil {
		script, err = os.ReadFile("examples/observe/observe.rc")
	}
	if err != nil {
		log.Fatal(err)
	}
	var out strings.Builder
	ctx := w.Shell.NewContext(&out, &out)
	if status := w.Shell.Run(ctx, string(script)); status != 0 {
		log.Fatalf("observe.rc status=%d\n%s", status, out.String())
	}
	fmt.Print(out.String())
}
