// Command help runs the reproduced system interactively on the paper's
// demo world. The screen renders as text after every command; input is
// the small command language of internal/repl, a textual stand-in for the
// mouse (type "help" at the prompt for the list).
//
// Flags: -w/-h set the screen size; -session replays the paper's session
// and exits; -boot prints the boot screen and exits; -listen serves the
// namespace over TCP so remote processes can drive the UI through
// /mnt/help; -debug serves expvar (the stats registry under "help") and
// net/http/pprof on an HTTP address; -journal keeps a write-ahead log of
// the session in a directory, -recover restores the session from it, and
// -journal-fsync picks the durability/throughput trade-off.
//
// -daemon turns the process into a multi-session server: one listener
// (-listen, required) multiplexes independent sessions spawned on first
// attach, each with its own namespace and (under -journal) its own
// lockfile-guarded journal directory; -max-sessions and -session-ttl
// bound the table and reap idle sessions. The overload budgets
// -max-bytes, -max-session-bytes, -max-total-procs, and -max-waiters
// bound resident memory, live commands, and parked waiters; past them
// the daemon refuses with a typed busy error carrying a -retry-after
// hint instead of degrading everyone. SIGINT/SIGTERM drains
// gracefully: attaches stop, commands are killed, every journal is
// checkpointed and flushed.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/repl"
	"repro/internal/session"
	"repro/internal/sessiond"
	"repro/internal/srvnet"
	"repro/internal/world"
)

func main() {
	width := flag.Int("w", 120, "screen width in cells")
	height := flag.Int("h", 50, "screen height in cells")
	runSession := flag.Bool("session", false, "replay the paper's debugging session and exit")
	bootOnly := flag.Bool("boot", false, "print the boot screen and exit")
	listen := flag.String("listen", "", "serve the namespace (including /mnt/help) on this TCP address")
	remote := flag.String("remote", "", "attach a remote namespace at this TCP address (repl fetch)")
	debug := flag.String("debug", "", "serve expvar and pprof on this HTTP address")
	journalDir := flag.String("journal", "", "keep a crash-safe session journal in this directory")
	recoverFlag := flag.Bool("recover", false, "restore the session from the -journal directory before starting")
	journalFsync := flag.String("journal-fsync", "batch", "journal fsync policy: batch, always, or never")
	daemon := flag.Bool("daemon", false, "host many sessions behind -listen, one per attach handshake")
	maxSessions := flag.Int("max-sessions", sessiond.DefaultMaxSessions, "daemon: bound on live sessions")
	sessionTTL := flag.Duration("session-ttl", 0, "daemon: reap sessions idle this long (0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "bound on the graceful drain after SIGINT/SIGTERM")
	maxBytes := flag.Int64("max-bytes", 0, "daemon: total resident buffer bytes across sessions (0 unbounded)")
	maxSessionBytes := flag.Int64("max-session-bytes", 0, "daemon: resident buffer bytes per session (0 unbounded)")
	maxTotalProcs := flag.Int("max-total-procs", 0, "daemon: live commands across sessions (0 unbounded)")
	maxWaiters := flag.Int("max-waiters", srvnet.DefaultMaxWaiters, "daemon: parked event/readwait waiters across connections (-1 unbounded)")
	retryAfter := flag.Duration("retry-after", 0, "daemon: retry hint stamped on busy refusals (0: default)")
	maxResident := flag.Int64("max-resident", 0, "paged-text threshold and per-window residency cap in bytes (0: 8 MiB default, negative disables paging)")
	flag.Parse()

	if *recoverFlag && *journalDir == "" {
		exitOn(fmt.Errorf("-recover requires -journal <dir>"))
	}
	if *daemon {
		exitOn(runDaemon(daemonOpts{
			width:           *width,
			height:          *height,
			listen:          *listen,
			debug:           *debug,
			journalRoot:     *journalDir,
			fsync:           *journalFsync,
			maxSessions:     *maxSessions,
			ttl:             *sessionTTL,
			drainTimeout:    *drainTimeout,
			maxBytes:        *maxBytes,
			maxSessionBytes: *maxSessionBytes,
			maxTotalProcs:   *maxTotalProcs,
			maxWaiters:      *maxWaiters,
			retryAfter:      *retryAfter,
			maxResident:     *maxResident,
		}))
		return
	}

	if *runSession {
		s, err := session.New(*width, *height)
		exitOn(err)
		exitOn(s.RunDebugSession())
		for _, st := range s.Steps {
			fmt.Printf("==== %s: %s ====\n%s\n", st.Name, st.Desc, st.Screen)
		}
		m := s.Last().Metrics
		fmt.Printf("session total: %d presses, %d keystrokes, %d cells travel\n",
			m.Presses, m.Keystrokes, m.Travel)
		return
	}

	w, err := world.Build(*width, *height)
	exitOn(err)
	exitOn(w.Boot())
	if *maxResident != 0 {
		w.Help.SetLimits(core.Limits{MaxResident: *maxResident})
	}

	if *journalDir != "" {
		policy, err := journal.ParsePolicy(*journalFsync)
		exitOn(err)
		jfs, err := journal.DirFS(*journalDir)
		exitOn(err)
		if *recoverFlag {
			// Recovery runs before the journal is attached: replay must
			// not be re-journaled.
			res, err := core.RecoverSession(w.Help, jfs)
			exitOn(err)
			fmt.Fprintf(os.Stderr, "help: recovered session: checkpoint gen %d + %d ops in %v",
				res.CkptGen, res.Ops, res.Elapsed.Round(time.Microsecond))
			if res.Torn {
				fmt.Fprintf(os.Stderr, " (discarded torn tail: %s)", res.TornReason)
			}
			fmt.Fprintln(os.Stderr)
		}
		jw, err := journal.Open(jfs, journal.Config{Fsync: policy})
		exitOn(err)
		jw.OnError = func(err error) {
			w.Help.ReportFault("journal (degraded)", err)
		}
		w.Help.AttachJournal(jw, 0)
		defer jw.Close()
		// A SIGINT/SIGTERM must not lose the WAL tail: checkpoint and
		// flush before exiting, the same guarantee the daemon's drain
		// gives every session.
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sigc
			if err := w.Help.SyncJournal(); err != nil {
				fmt.Fprintf(os.Stderr, "help: journal flush on exit: %v\n", err)
				os.Exit(1)
			}
			jw.Close()
			os.Exit(0)
		}()
	}

	fmt.Print(w.Help.Screen().String())

	if *debug != "" {
		// The same registry /mnt/help/stats serves, as expvar JSON under
		// "help", plus the stock net/http/pprof endpoints.
		reg := w.Help.Obs
		expvar.Publish("help", expvar.Func(func() any { return reg.StatsMap() }))
		dl, err := net.Listen("tcp", *debug)
		exitOn(err)
		fmt.Fprintf(os.Stderr, "help: debug (expvar, pprof) served on http://%s/debug/\n", dl.Addr())
		go http.Serve(dl, nil)
	}

	if *listen != "" {
		// Export the namespace: remote processes drive the UI through
		// /mnt/help, the paper's multi-machine Plan 9 arrangement.
		l, err := net.Listen("tcp", *listen)
		exitOn(err)
		fmt.Fprintf(os.Stderr, "help: namespace served on %s\n", l.Addr())
		srv := srvnet.NewServer(w.FS)
		srv.Obs = w.Help.Obs
		go srv.Serve(l)
	}

	if *bootOnly {
		return
	}

	r := repl.New(w.Help, os.Stdout)
	if *remote != "" {
		// The paper's invisible call to the CPU server: a fault-tolerant,
		// cached, pipelined connection to another machine's namespace.
		rc := srvnet.NewReconnectingClient(*remote)
		rc.CacheReads = true
		rc.Obs = w.Help.Obs
		defer rc.Close()
		r.Remote = rc
	}
	r.Run(os.Stdin)
}

// daemonOpts collects the -daemon flag set: lifecycle knobs plus the
// overload budgets (memory, commands, waiters, retry hint).
type daemonOpts struct {
	width, height   int
	listen, debug   string
	journalRoot     string
	fsync           string
	maxSessions     int
	ttl             time.Duration
	drainTimeout    time.Duration
	maxBytes        int64
	maxSessionBytes int64
	maxTotalProcs   int
	maxWaiters      int
	retryAfter      time.Duration
	maxResident     int64
}

// runDaemon hosts many sessions in one process: a world template is
// built once, sessions are stamped from it on first attach, and one
// mux listener serves them all. SIGINT/SIGTERM triggers a bounded
// graceful drain — stop attaches, kill live commands, checkpoint and
// flush every journal — before exit.
func runDaemon(o daemonOpts) error {
	listen, debug, drainTimeout := o.listen, o.debug, o.drainTimeout
	if listen == "" {
		return fmt.Errorf("-daemon requires -listen <addr>")
	}
	policy, err := journal.ParsePolicy(o.fsync)
	if err != nil {
		return err
	}
	tmpl, err := world.NewTemplate()
	if err != nil {
		return err
	}
	reg := obs.New()
	mgr := sessiond.NewManager(sessiond.Config{
		Width:           o.width,
		Height:          o.height,
		MaxSessions:     o.maxSessions,
		TTL:             o.ttl,
		JournalRoot:     o.journalRoot,
		Fsync:           policy,
		MaxBytes:        o.maxBytes,
		MaxSessionBytes: o.maxSessionBytes,
		MaxTotalProcs:   o.maxTotalProcs,
		MaxResident:     o.maxResident,
		RetryAfter:      o.retryAfter,
		Obs:             reg,
		Build: func(name string, w, h int) (*world.World, error) {
			return tmpl.NewSession(w, h)
		},
	})

	if debug != "" {
		expvar.Publish("helpd", expvar.Func(func() any { return reg.StatsMap() }))
		dl, err := net.Listen("tcp", debug)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "helpd: debug (expvar, pprof) served on http://%s/debug/\n", dl.Addr())
		go http.Serve(dl, nil)
	}

	l, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	srv := srvnet.NewMuxServer(mgr)
	srv.Obs = reg
	srv.MaxWaiters = o.maxWaiters
	srv.RetryAfter = o.retryAfter
	fmt.Fprintf(os.Stderr, "helpd: sessions served on %s\n", l.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "helpd: %v: draining (up to %v)\n", sig, drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		// Stop the wire first so draining conns hear a typed error,
		// then retire every session.
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "helpd: connection drain: %v\n", err)
		}
		if err := mgr.Drain(ctx); err != nil {
			return fmt.Errorf("session drain: %w", err)
		}
		fmt.Fprintln(os.Stderr, "helpd: drained cleanly")
		return nil
	case err := <-serveErr:
		return err
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "help: %v\n", err)
		os.Exit(1)
	}
}
