// Command help runs the reproduced system interactively on the paper's
// demo world. The screen renders as text after every command; input is
// the small command language of internal/repl, a textual stand-in for the
// mouse (type "help" at the prompt for the list).
//
// Flags: -w/-h set the screen size; -session replays the paper's session
// and exits; -boot prints the boot screen and exits; -listen serves the
// namespace over TCP so remote processes can drive the UI through
// /mnt/help; -debug serves expvar (the stats registry under "help") and
// net/http/pprof on an HTTP address; -journal keeps a write-ahead log of
// the session in a directory, -recover restores the session from it, and
// -journal-fsync picks the durability/throughput trade-off.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/repl"
	"repro/internal/session"
	"repro/internal/srvnet"
	"repro/internal/world"
)

func main() {
	width := flag.Int("w", 120, "screen width in cells")
	height := flag.Int("h", 50, "screen height in cells")
	runSession := flag.Bool("session", false, "replay the paper's debugging session and exit")
	bootOnly := flag.Bool("boot", false, "print the boot screen and exit")
	listen := flag.String("listen", "", "serve the namespace (including /mnt/help) on this TCP address")
	debug := flag.String("debug", "", "serve expvar and pprof on this HTTP address")
	journalDir := flag.String("journal", "", "keep a crash-safe session journal in this directory")
	recoverFlag := flag.Bool("recover", false, "restore the session from the -journal directory before starting")
	journalFsync := flag.String("journal-fsync", "batch", "journal fsync policy: batch, always, or never")
	flag.Parse()

	if *recoverFlag && *journalDir == "" {
		exitOn(fmt.Errorf("-recover requires -journal <dir>"))
	}

	if *runSession {
		s, err := session.New(*width, *height)
		exitOn(err)
		exitOn(s.RunDebugSession())
		for _, st := range s.Steps {
			fmt.Printf("==== %s: %s ====\n%s\n", st.Name, st.Desc, st.Screen)
		}
		m := s.Last().Metrics
		fmt.Printf("session total: %d presses, %d keystrokes, %d cells travel\n",
			m.Presses, m.Keystrokes, m.Travel)
		return
	}

	w, err := world.Build(*width, *height)
	exitOn(err)
	exitOn(w.Boot())

	if *journalDir != "" {
		policy, err := journal.ParsePolicy(*journalFsync)
		exitOn(err)
		jfs, err := journal.DirFS(*journalDir)
		exitOn(err)
		if *recoverFlag {
			// Recovery runs before the journal is attached: replay must
			// not be re-journaled.
			res, err := core.RecoverSession(w.Help, jfs)
			exitOn(err)
			fmt.Fprintf(os.Stderr, "help: recovered session: checkpoint gen %d + %d ops in %v",
				res.CkptGen, res.Ops, res.Elapsed.Round(time.Microsecond))
			if res.Torn {
				fmt.Fprintf(os.Stderr, " (discarded torn tail: %s)", res.TornReason)
			}
			fmt.Fprintln(os.Stderr)
		}
		jw, err := journal.Open(jfs, journal.Config{Fsync: policy})
		exitOn(err)
		jw.OnError = func(err error) {
			w.Help.ReportFault("journal (degraded)", err)
		}
		w.Help.AttachJournal(jw, 0)
		defer jw.Close()
	}

	fmt.Print(w.Help.Screen().String())

	if *debug != "" {
		// The same registry /mnt/help/stats serves, as expvar JSON under
		// "help", plus the stock net/http/pprof endpoints.
		reg := w.Help.Obs
		expvar.Publish("help", expvar.Func(func() any { return reg.StatsMap() }))
		dl, err := net.Listen("tcp", *debug)
		exitOn(err)
		fmt.Fprintf(os.Stderr, "help: debug (expvar, pprof) served on http://%s/debug/\n", dl.Addr())
		go http.Serve(dl, nil)
	}

	if *listen != "" {
		// Export the namespace: remote processes drive the UI through
		// /mnt/help, the paper's multi-machine Plan 9 arrangement.
		l, err := net.Listen("tcp", *listen)
		exitOn(err)
		fmt.Fprintf(os.Stderr, "help: namespace served on %s\n", l.Addr())
		go srvnet.NewServer(w.FS).Serve(l)
	}

	if *bootOnly {
		return
	}

	repl.New(w.Help, os.Stdout).Run(os.Stdin)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "help: %v\n", err)
		os.Exit(1)
	}
}
