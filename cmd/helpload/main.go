// Command helpload records and replays gesture traces against a help
// daemon (help -daemon -listen <addr>): the load generator behind
// `make chaos`.
//
// Replay (the default) drives -users simulated users over -sessions
// sessions, each repeating the trace -iterations times with jittered
// think time, and prints what the fleet observed — including typed busy
// refusals and degradations, the overload work's visible surface:
//
//	helpload -addr :8090 -users 100 -sessions 25 -iterations 3
//
// -record instead attaches to one session, listens to its event log for
// -record-for (backfilling the retained tail, then following live), and
// writes a replayable trace to stdout:
//
//	helpload -addr :8090 -record mysession -record-for 30s > trace.txt
//	helpload -addr :8090 -trace trace.txt -users 1000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/srvnet"
	"repro/internal/world"
)

func main() {
	addr := flag.String("addr", "", "daemon srvnet address (required)")
	users := flag.Int("users", 1, "simulated users")
	sessions := flag.Int("sessions", 0, "distinct sessions the users spread over (default: one per user)")
	iterations := flag.Int("iterations", 1, "trace repetitions per user")
	think := flag.Float64("think", 0, "think-time scale (0 replays at full speed, 1 at recorded pace)")
	seed := flag.Int64("seed", 1, "seed for think jitter and client backoff")
	tracePath := flag.String("trace", "", "trace file to replay (default: the built-in editing trace)")
	prefix := flag.String("prefix", "load", "session name prefix")
	busyBudget := flag.Duration("busy-budget", 2*time.Second, "how long one op waits out busy refusals before degrading")
	record := flag.String("record", "", "record: listen to this session's event log and print a trace")
	recordFor := flag.Duration("record-for", 10*time.Second, "how long -record listens before writing the trace")
	recordThink := flag.Duration("record-think", 50*time.Millisecond, "think time stamped on recorded ops")
	stats := flag.Bool("stats", false, "after replay, print the daemon-visible client stats registry")
	flag.Parse()

	if *addr == "" {
		fail(fmt.Errorf("-addr is required"))
	}

	if *record != "" {
		c := srvnet.NewReconnectingClient(*addr)
		c.Session = *record
		defer c.Close()
		// The log is a stream, not a file: park on it with resumable
		// blocking reads (since 0 backfills the retained tail) until the
		// recording window closes.
		path := world.MountRoot + "/log"
		deadline := time.Now().Add(*recordFor)
		var buf []byte
		var since uint64
		for {
			left := time.Until(deadline)
			if left <= 0 {
				break
			}
			data, next, err := c.ReadWait(path, since, left)
			fail(err)
			buf = append(buf, data...)
			since = next
		}
		tr, err := loadgen.RecordLog(buf, *recordThink)
		fail(err)
		fmt.Print(tr.Text())
		return
	}

	var tr *loadgen.Trace
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		fail(err)
		tr, err = loadgen.ParseTrace(f)
		f.Close()
		fail(err)
	}

	reg := obs.New()
	start := time.Now()
	st, err := loadgen.Replay(loadgen.Config{
		Addr:          *addr,
		Users:         *users,
		Sessions:      *sessions,
		Iterations:    *iterations,
		ThinkScale:    *think,
		Seed:          *seed,
		Trace:         tr,
		SessionPrefix: *prefix,
		Obs:           reg,
		BusyBudget:    *busyBudget,
	})
	fail(err)
	elapsed := time.Since(start)
	fmt.Printf("%s in %v (%.0f ops/s)\n", st, elapsed.Round(time.Millisecond),
		float64(st.Ops)/elapsed.Seconds())
	if *stats {
		fmt.Print(reg.StatsText())
	}
	if st.Errors > 0 {
		fmt.Fprintf(os.Stderr, "helpload: %d hard errors, first: %v\n", st.Errors, st.FirstError)
		os.Exit(1)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "helpload: %v\n", err)
		os.Exit(1)
	}
}
