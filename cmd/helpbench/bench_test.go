package main

import (
	"strings"
	"testing"
)

func TestParseBenchMinOfN(t *testing.T) {
	out := `goos: linux
BenchmarkRenderScreen-8   	    1000	     30000 ns/op	     100 B/op	       5 allocs/op
BenchmarkRenderScreen-8   	    1000	     25000 ns/op	      90 B/op	       5 allocs/op
BenchmarkRenderScreen-8   	    1000	     40000 ns/op	     110 B/op	       5 allocs/op
BenchmarkOther-8          	    2000	      1000 ns/op
PASS
`
	got, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	e, ok := got["BenchmarkRenderScreen"]
	if !ok {
		t.Fatalf("entries = %v", got)
	}
	if e.NsPerOp != 25000 {
		t.Errorf("ns/op = %v, want the minimum 25000", e.NsPerOp)
	}
	if e.BytesPerOp != 90 || e.AllocsPerOp != 5 {
		t.Errorf("min run's companions not kept: %+v", e)
	}
	if got["BenchmarkOther"].NsPerOp != 1000 {
		t.Errorf("BenchmarkOther = %+v", got["BenchmarkOther"])
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	cur := map[string]benchEntry{
		"BenchmarkA": {NsPerOp: 1000, AllocsPerOp: 10},
		"BenchmarkB": {NsPerOp: 1300, AllocsPerOp: 10},
		"BenchmarkC": {NsPerOp: 500},
	}
	base := map[string]benchEntry{
		"BenchmarkA": {NsPerOp: 1000, AllocsPerOp: 10},
		"BenchmarkB": {NsPerOp: 1000, AllocsPerOp: 10},
	}
	regressed := compare(cur, base)
	if len(regressed) != 1 || !strings.Contains(regressed[0], "BenchmarkB") {
		t.Errorf("regressed = %v, want only BenchmarkB", regressed)
	}
	if cur["BenchmarkA"].NsRatio != 1 {
		t.Errorf("NsRatio = %v", cur["BenchmarkA"].NsRatio)
	}
}
