// Benchmark-comparison mode: parse `go test -bench -benchmem` text
// output into JSON and gate regressions against a checked-in baseline.
//
//	go test -bench=. -benchmem ./... | helpbench -benchjson - -baseline BENCH_BASELINE.json -o BENCH_PR2.json
//
// Exits nonzero when any benchmark present in both runs regressed more
// than 20% on ns/op or allocs/op.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// benchEntry is one benchmark's numbers. When a baseline is supplied the
// baseline values and the improvement ratios (baseline/current, so >1
// means faster/leaner) are recorded alongside.
type benchEntry struct {
	NsPerOp             float64 `json:"ns_per_op"`
	BytesPerOp          float64 `json:"bytes_per_op"`
	AllocsPerOp         float64 `json:"allocs_per_op"`
	BaselineNsPerOp     float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineAllocsPerOp float64 `json:"baseline_allocs_per_op,omitempty"`
	NsRatio             float64 `json:"ns_ratio,omitempty"`
	AllocsRatio         float64 `json:"allocs_ratio,omitempty"`
}

// regressionSlack is how much worse a metric may get before the compare
// gate fails the run.
const regressionSlack = 1.20

// parseBench reads `go test -bench` text output. Only Benchmark result
// lines are parsed; everything else (pkg headers, PASS/ok, logs) is
// skipped. The trailing -N GOMAXPROCS suffix is stripped so names stay
// stable across machines. When a benchmark appears more than once
// (`-count N`), the run with the lowest ns/op wins: the minimum is the
// noise-robust estimator on a shared machine — every source of
// interference only ever makes a run slower.
func parseBench(r io.Reader) (map[string]benchEntry, error) {
	out := map[string]benchEntry{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var e benchEntry
		// fields[1] is the iteration count; then "value unit" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			}
		}
		if e.NsPerOp > 0 {
			if prev, ok := out[name]; !ok || e.NsPerOp < prev.NsPerOp {
				out[name] = e
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	return out, nil
}

func loadBaseline(path string) (map[string]benchEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base map[string]benchEntry
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return base, nil
}

// compare annotates cur with baseline numbers and returns the names that
// regressed beyond the slack on ns/op or allocs/op.
func compare(cur, base map[string]benchEntry) (regressed []string) {
	for name, c := range cur {
		b, ok := base[name]
		if !ok {
			continue
		}
		c.BaselineNsPerOp = b.NsPerOp
		c.BaselineAllocsPerOp = b.AllocsPerOp
		if c.NsPerOp > 0 {
			c.NsRatio = b.NsPerOp / c.NsPerOp
		}
		if c.AllocsPerOp > 0 {
			c.AllocsRatio = b.AllocsPerOp / c.AllocsPerOp
		}
		cur[name] = c
		if c.NsPerOp > b.NsPerOp*regressionSlack {
			regressed = append(regressed,
				fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (+%.0f%%)",
					name, c.NsPerOp, b.NsPerOp, 100*(c.NsPerOp/b.NsPerOp-1)))
		}
		if c.AllocsPerOp > b.AllocsPerOp*regressionSlack {
			regressed = append(regressed,
				fmt.Sprintf("%s: %.0f allocs/op vs baseline %.0f (+%.0f%%)",
					name, c.AllocsPerOp, b.AllocsPerOp, 100*(c.AllocsPerOp/b.AllocsPerOp-1)))
		}
	}
	return regressed
}

// runBenchMode is the entry point for -benchjson. It reads bench text
// from the named file ("-" for stdin), optionally compares against a
// baseline JSON, writes the annotated JSON to outPath (or stdout), and
// exits nonzero on regression.
func runBenchMode(inPath, baselinePath, outPath string) {
	in := io.Reader(os.Stdin)
	if inPath != "-" {
		f, err := os.Open(inPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "helpbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	cur, err := parseBench(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "helpbench: parse bench output: %v\n", err)
		os.Exit(1)
	}

	var regressed []string
	if baselinePath != "" {
		base, err := loadBaseline(baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "helpbench: %v\n", err)
			os.Exit(1)
		}
		regressed = compare(cur, base)
	}

	data, err := json.MarshalIndent(cur, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "helpbench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if outPath == "" || outPath == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(outPath, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "helpbench: %v\n", err)
		os.Exit(1)
	}

	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "helpbench: %d benchmark(s) regressed >%.0f%%:\n",
			len(regressed), 100*(regressionSlack-1))
		for _, r := range regressed {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		os.Exit(1)
	}
}
