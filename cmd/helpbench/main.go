// Command helpbench prints the evaluation tables of EXPERIMENTS.md: each
// reproduces one of the paper's quantified claims against the live system.
// The generators live in internal/report; this wrapper selects and runs
// them.
//
// Usage:
//
//	helpbench [-table name] [-w cols] [-h rows] [-src dir]
//
// Tables: clicks, interaction, usesgrep, size, placement, connectivity,
// all (default).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/report"
)

func main() {
	table := flag.String("table", "all", "table to print: clicks|interaction|usesgrep|size|placement|connectivity|all")
	width := flag.Int("w", 120, "screen width")
	height := flag.Int("h", 60, "screen height")
	srcRoot := flag.String("src", ".", "repository root for the size table")
	flag.Parse()

	run := func(name string, fn func(io.Writer) error) {
		if *table != "all" && *table != name {
			return
		}
		if err := fn(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "helpbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("clicks", func(w io.Writer) error { return report.Clicks(w, *width, *height) })
	run("interaction", report.Interaction)
	run("usesgrep", report.UsesGrep)
	run("size", func(w io.Writer) error { return report.Size(w, *srcRoot) })
	run("placement", report.Placement)
	run("connectivity", func(w io.Writer) error { return report.Connectivity(w, *width, *height) })
}
