// Command helpbench prints the evaluation tables of EXPERIMENTS.md: each
// reproduces one of the paper's quantified claims against the live system.
// The generators live in internal/report; this wrapper selects and runs
// them.
//
// Usage:
//
//	helpbench [-table name] [-w cols] [-h rows] [-src dir]
//	helpbench -benchjson file|- [-baseline file.json] [-o out.json]
//
// Tables: clicks, interaction, usesgrep, size, placement, connectivity,
// stats, all (default). The second form parses `go test -bench -benchmem`
// output into JSON and exits nonzero if any benchmark regressed >20%
// against the baseline (see bench.go).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/report"
)

func main() {
	table := flag.String("table", "all", "table to print: clicks|interaction|usesgrep|size|placement|connectivity|stats|all")
	width := flag.Int("w", 120, "screen width")
	height := flag.Int("h", 60, "screen height")
	srcRoot := flag.String("src", ".", "repository root for the size table")
	benchJSON := flag.String("benchjson", "", "parse `go test -bench` output from this file (- for stdin) instead of printing tables")
	baseline := flag.String("baseline", "", "baseline JSON to compare against (with -benchjson)")
	outJSON := flag.String("o", "", "write bench JSON here (with -benchjson; default stdout)")
	flag.Parse()

	if *benchJSON != "" {
		runBenchMode(*benchJSON, *baseline, *outJSON)
		return
	}

	run := func(name string, fn func(io.Writer) error) {
		if *table != "all" && *table != name {
			return
		}
		if err := fn(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "helpbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("clicks", func(w io.Writer) error { return report.Clicks(w, *width, *height) })
	run("interaction", report.Interaction)
	run("usesgrep", report.UsesGrep)
	run("size", func(w io.Writer) error { return report.Size(w, *srcRoot) })
	run("placement", report.Placement)
	run("connectivity", func(w io.Writer) error { return report.Connectivity(w, *width, *height) })
	run("stats", func(w io.Writer) error { return report.Stats(w, *width, *height) })
}
