// Command helpfigs regenerates the paper's figures as ASCII screenshots.
//
// Usage:
//
//	helpfigs [-fig N] [-w cols] [-h rows] [-o dir]
//
// With -fig N it prints figure N (1-12) to standard output; without it,
// every figure is written to dir (default "figures") as figN.txt.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/session"
)

func main() {
	fig := flag.Int("fig", 0, "figure number (1-12); 0 means all")
	width := flag.Int("w", 120, "screen width in cells")
	height := flag.Int("h", 60, "screen height in cells")
	outDir := flag.String("o", "figures", "output directory when writing all figures")
	flag.Parse()

	if *fig != 0 {
		st, err := session.Figure(*fig, *width, *height)
		if err != nil {
			fmt.Fprintf(os.Stderr, "helpfigs: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("Figure %d: %s\n\n%s", *fig, st.Desc, st.Screen)
		if strings.Contains(st.Attrs, "U") {
			fmt.Printf("\nattribute plane (R reverse video, O outline, U underline):\n%s", st.Attrs)
		}
		fmt.Printf("\n[presses=%d keystrokes=%d travel=%d]\n",
			st.Metrics.Presses, st.Metrics.Keystrokes, st.Metrics.Travel)
		return
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "helpfigs: %v\n", err)
		os.Exit(1)
	}
	for n := 1; n <= 12; n++ {
		st, err := session.Figure(n, *width, *height)
		if err != nil {
			fmt.Fprintf(os.Stderr, "helpfigs: figure %d: %v\n", n, err)
			os.Exit(1)
		}
		path := filepath.Join(*outDir, fmt.Sprintf("fig%d.txt", n))
		content := fmt.Sprintf("Figure %d: %s\n\n%s", n, st.Desc, st.Screen)
		if strings.Contains(st.Attrs, "U") {
			content += "\nattribute plane (R reverse video, O outline, U underline):\n" + st.Attrs
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "helpfigs: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%s)\n", path, st.Desc)
	}
}
