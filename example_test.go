package repro_test

import (
	"fmt"
	"strings"

	"repro/internal/event"
	"repro/internal/geom"
	"repro/internal/world"
)

// Example reproduces the paper's fundamental interaction in a dozen
// lines: point at a file name with the left button, execute Open with the
// middle button, and the file appears — no dialogs, no typing.
func Example() {
	w, err := world.Build(100, 40)
	if err != nil {
		panic(err)
	}
	if err := w.Boot(); err != nil {
		panic(err)
	}
	h := w.Help

	// A window mentions dat.h; the user points at it...
	note := h.NewWindowIn(0)
	note.Tag.SetString(world.SrcDir + "/help.c\tClose!")
	note.Tag.SetClean()
	note.Body.SetString(`#include "dat.h"` + "\n")
	h.Render()
	p, _ := h.FindBody(note, "dat.h")
	h.HandleAll(event.Click(event.Left, p.Add(geom.Pt(1, 0))))

	// ...and middle-clicks Open in the edit tool.
	edit := h.WindowByName("/help/edit/stf")
	h.Render()
	pOpen, _ := h.FindBody(edit, "Open")
	h.HandleAll(event.Click(event.Middle, pOpen))

	opened := h.WindowByName(world.SrcDir + "/dat.h")
	fmt.Println("opened:", opened.FileName())
	fmt.Println("body starts:", strings.SplitN(opened.Body.String(), "\n", 2)[0])
	m := h.Metrics()
	fmt.Printf("cost: %d presses, %d keystrokes\n", m.Presses, m.Keystrokes)
	// Output:
	// opened: /usr/rob/src/help/dat.h
	// body starts: /*
	// cost: 2 presses, 0 keystrokes
}

// Example_fileInterface shows the programming interface: a window driven
// entirely through /mnt/help file operations, with no UI code.
func Example_fileInterface() {
	w, err := world.Build(100, 40)
	if err != nil {
		panic(err)
	}
	sh := w.Shell
	var out strings.Builder
	ctx := sh.NewContext(&out, &out)
	sh.Run(ctx, `
x=`+"`"+`{cat /mnt/help/new/ctl}
echo name /results > /mnt/help/$x/ctl
echo hello from a script > /mnt/help/$x/bodyapp
`)
	win := w.Help.WindowByName("/results")
	fmt.Print(win.Body.String())
	fmt.Println("windows:", len(w.Help.Windows()))
	// Output:
	// hello from a script
	// windows: 1
}

// Example_uses runs the semantic browser query from Figure 10.
func Example_uses() {
	w, err := world.Build(80, 24)
	if err != nil {
		panic(err)
	}
	var out strings.Builder
	ctx := w.Shell.NewContext(&out, &out)
	ctx.Dir = world.SrcDir
	w.Shell.Run(ctx, "help/rcc -w -g -u -D"+world.SrcDir+" -in -n252 -fexec.c "+
		"dat.h fns.h help.c exec.c text.c errs.c")
	fmt.Print(out.String())
	// Output:
	// dat.h:136
	// exec.c:213
	// exec.c:252
	// help.c:35
}
