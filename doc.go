// Package repro is a production-quality Go reproduction of Rob Pike's
// "A Minimalist Global User Interface" (USENIX Summer 1991): the help
// editor/window-system/shell hybrid, every substrate it stands on (a
// Plan 9-style namespace, an rc-subset shell and userland, a stripped C
// compiler, a simulated process table and debugger, a mail system), the
// file-server programming interface at /mnt/help, and a harness that
// regenerates each of the paper's twelve figures and quantified claims.
//
// See README.md for the tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-measured record. The benchmarks in
// bench_test.go exercise one experiment per table plus the substrate
// micro-benchmarks.
package repro
